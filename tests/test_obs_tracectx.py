"""Unit tests for cross-process trace context, the telemetry hub and the
run-level Chrome-trace merge."""

from __future__ import annotations

import json
import os

from repro import obs
from repro.obs import tracectx
from repro.obs.artifacts import obs_root, write_job_artifacts
from repro.obs.merge import merge_events, merge_manifest, spans_to_events
from repro.obs.stream import TelemetryHub, tail_since
from repro.obs.tracectx import TRACE_ENV, TraceContext, new_run_id


# ----------------------------------------------------------------------
# Trace context
# ----------------------------------------------------------------------
def test_run_ids_are_unique_and_prefixed():
    ids = {new_run_id() for _ in range(32)}
    assert len(ids) == 32
    assert all(i.startswith("run-") for i in ids)
    assert new_run_id("serve").startswith("serve-")


def test_context_round_trips_through_json():
    ctx = TraceContext(run_id="run-x", origin="serve", root_pid=42)
    assert TraceContext.from_json(ctx.to_json()) == ctx
    assert TraceContext.from_json("not json") is None
    assert TraceContext.from_json(json.dumps({"origin": "serve"})) is None


def test_activate_mirrors_into_environment():
    ctx = TraceContext(run_id="run-env", root_pid=1)
    previous = tracectx.activate(ctx)
    try:
        assert previous is None
        assert tracectx.current() == ctx
        assert TraceContext.from_json(os.environ[TRACE_ENV]) == ctx
    finally:
        tracectx.activate(previous)
    assert tracectx.current() is None
    assert TRACE_ENV not in os.environ


def test_current_falls_back_to_environment(monkeypatch):
    ctx = TraceContext(run_id="run-spawned", origin="exec.run", root_pid=7)
    monkeypatch.setenv(TRACE_ENV, ctx.to_json())
    assert tracectx.current() == ctx


def test_propagated_accepts_none_and_restores():
    with tracectx.propagated(None):
        assert tracectx.current() is None
    outer = TraceContext(run_id="run-outer")
    tracectx.activate(outer)
    try:
        with tracectx.propagated(TraceContext(run_id="run-inner")):
            assert tracectx.current().run_id == "run-inner"
        assert tracectx.current() == outer
    finally:
        tracectx.reset()


def test_job_annotations_stamp_pid_and_run():
    assert tracectx.job_annotations() == {"pid": os.getpid()}
    with tracectx.propagated(TraceContext(run_id="run-a", origin="serve")):
        fields = tracectx.job_annotations()
    assert fields == {"pid": os.getpid(), "run_id": "run-a", "origin": "serve"}


def test_obs_reset_clears_context_and_hub():
    tracectx.activate(TraceContext(run_id="run-stale"))
    obs.install_hub(TelemetryHub())
    obs.reset()
    assert tracectx.current() is None
    assert obs.active_hub() is None


# ----------------------------------------------------------------------
# Telemetry hub
# ----------------------------------------------------------------------
def test_hub_sanitizes_and_counts():
    hub = TelemetryHub(sample_capacity=4)
    hub.publish_sample("cosmos", "zipf", at=1000,
                       values={"rate": 0.5, "bad": float("nan")})
    rows, lost, cursor = hub.tail_samples(0)
    assert lost == 0 and cursor == 1
    assert rows[0]["values"] == {"rate": 0.5, "bad": None}
    hub.publish_event({"kind": "ctr_overflow", "at": 5, "depth": float("inf")})
    events, _, _ = hub.tail_events(0)
    assert events[0]["kind"] == "ctr_overflow"
    assert events[0]["depth"] is None


def test_tail_since_counts_evictions_as_lost():
    hub = TelemetryHub(sample_capacity=2)
    for at in range(5):
        hub.publish_sample("d", "w", at=at, values={})
    rows, lost, cursor = hub.tail_samples(0)
    assert [r["at"] for r in rows] == [3, 4]
    assert lost == 3 and cursor == 5
    # Caught-up consumer: nothing new, nothing lost.
    assert hub.tail_samples(cursor) == ([], 0, 5)


def test_tail_since_partial_catchup():
    ring = TelemetryHub(sample_capacity=8).samples
    for at in range(4):
        ring.record("sample", at=at)
    rows, lost, cursor = tail_since(ring, 2)
    assert [r["at"] for r in rows] == [2, 3]
    assert lost == 0 and cursor == 4


def test_sampler_publishes_into_active_hub(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "500")
    from repro.sim.config import small_test_config
    from repro.sim.simulator import Simulator, build_design
    from repro.workloads.micro import zipf_trace

    hub = TelemetryHub()
    obs.install_hub(hub)
    try:
        config = small_test_config(num_cores=1)
        trace = zipf_trace(n=2000, seed=7, write_fraction=0.4)
        simulator = Simulator(build_design("morphctr", config), config,
                              workload="zipf")
        simulator.run(trace.arrays())
    finally:
        obs.install_hub(None)
    rows, lost, _ = hub.tail_samples(0)
    assert lost == 0
    assert [r["at"] for r in rows] == [500, 1000, 1500, 2000]
    assert all(r["design"] == "morphctr" and r["workload"] == "zipf"
               for r in rows)


# ----------------------------------------------------------------------
# Chrome-trace merge
# ----------------------------------------------------------------------
def _manifest_payload(run_id, jobs):
    return {
        "manifest_version": 2,
        "run_id": run_id,
        "pid": 1000,
        "spans": {
            "name": "exec.run",
            "total_s": 1.0,
            "spans": [{"name": "execute", "start_s": 0.0, "duration_s": 1.0,
                       "meta": {}, "children": []}],
        },
        "jobs": jobs,
    }


def _write_job(root, job_hash, run_id, pid):
    recorder = obs.SpanRecorder("job x")
    with obs.recording(recorder):
        with obs.span("simulate"):
            pass
    meta = {"design": "np", "workload": "w", "pid": pid}
    if run_id is not None:
        meta["run_id"] = run_id
    written = write_job_artifacts(obs_root(root), job_hash,
                                  recorder=recorder, meta=meta)
    # Rewrite the trace with a controlled pid (the artifact recorded the
    # test process's own pid at export time).
    events = json.loads(written["trace"].read_text())
    for event in events:
        event["pid"] = pid
    written["trace"].write_text(json.dumps(events))


def test_merge_attributes_jobs_to_worker_pids(tmp_path):
    run_id = "run-merge"
    _write_job(tmp_path, "a" * 64, run_id, pid=2001)
    _write_job(tmp_path, "b" * 64, run_id, pid=2002)
    _write_job(tmp_path, "c" * 64, "run-other", pid=2003)  # foreign run
    jobs = [{"job_hash": h, "design": "np", "workload": "w", "status": "ok"}
            for h in ("a" * 64, "b" * 64, "c" * 64)]
    events = merge_events(_manifest_payload(run_id, jobs), tmp_path)

    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["pid"] for e in complete} == {1000, 2001, 2002}
    run_meta = [e for e in meta if e["name"] == "run_id"]
    assert run_meta[0]["args"]["run_id"] == run_id
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert "worker pid 2001" in names and "worker pid 2002" in names
    # Job spans carry their run and job labels for trace-viewer filtering.
    job_events = [e for e in complete if e["pid"] != 1000]
    assert all(e["args"]["run_id"] == run_id for e in job_events)


def test_merge_manifest_writes_sibling_and_trace_key(tmp_path):
    run_id = "run-file"
    _write_job(tmp_path, "d" * 64, run_id, pid=3001)
    manifest = tmp_path / "manifests" / "run-test.json"
    manifest.parent.mkdir(parents=True)
    manifest.write_text(json.dumps(_manifest_payload(run_id, [
        {"job_hash": "d" * 64, "design": "np", "workload": "w"}])))
    trace_path, count = merge_manifest(manifest, cache_root=tmp_path)
    assert trace_path == manifest.with_suffix(".trace.json")
    assert count == len(json.loads(trace_path.read_text()))
    assert json.loads(manifest.read_text())["trace"] == trace_path.name


def test_spans_to_events_flattens_children():
    tree = [{"name": "parent", "start_s": 0.0, "duration_s": 2.0, "meta": {},
             "children": [{"name": "child", "start_s": 0.5, "duration_s": 1.0,
                           "meta": {"k": "v"}, "children": []}]}]
    events = spans_to_events(tree, pid=9)
    assert [e["name"] for e in events] == ["parent", "child"]
    assert all(e["pid"] == 9 and e["ph"] == "X" for e in events)
    assert events[1]["args"] == {"k": "v"}
