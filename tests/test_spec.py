"""Unit tests for the SPEC-like irregular trace generators."""

import pytest

from repro.workloads.spec import SPEC_WORKLOADS, generate_spec_trace


def test_workload_names():
    assert set(SPEC_WORKLOADS) == {"mcf", "canneal", "omnetpp"}


@pytest.mark.parametrize("spec_name", SPEC_WORKLOADS)
def test_generates_requested_length(spec_name):
    trace = generate_spec_trace(spec_name, num_cores=2, max_accesses=4000)
    assert len(trace) == 4000
    assert trace.name == spec_name


def test_unknown_benchmark():
    with pytest.raises(ValueError):
        generate_spec_trace("gcc")


def test_deterministic():
    a = generate_spec_trace("mcf", num_cores=1, max_accesses=2000, seed=5)
    b = generate_spec_trace("mcf", num_cores=1, max_accesses=2000, seed=5)
    assert [x.address for x in a] == [x.address for x in b]


def test_mcf_is_pointer_chasing_irregular():
    trace = generate_spec_trace("mcf", num_cores=1, max_accesses=6000,
                                working_set_elements=50_000)
    # Consecutive node loads land on unrelated lines almost always.
    blocks = [access.block_address for access in trace]
    sequential = sum(1 for a, b in zip(blocks, blocks[1:]) if abs(b - a) <= 1)
    assert sequential / len(blocks) < 0.5


def test_canneal_mixes_writes():
    trace = generate_spec_trace("canneal", num_cores=1, max_accesses=5000)
    assert 0.1 < trace.write_fraction < 0.7


def test_omnetpp_has_hot_heap_and_cold_pool():
    trace = generate_spec_trace("omnetpp", num_cores=1, max_accesses=8000)
    counts = {}
    for access in trace:
        counts[access.block_address] = counts.get(access.block_address, 0) + 1
    frequencies = sorted(counts.values(), reverse=True)
    # The event-queue heap head is far hotter than the median message.
    assert frequencies[0] > 20 * frequencies[len(frequencies) // 2]


def test_working_set_override():
    small = generate_spec_trace("mcf", num_cores=1, max_accesses=3000,
                                working_set_elements=1000)
    large = generate_spec_trace("mcf", num_cores=1, max_accesses=3000,
                                working_set_elements=100_000)
    assert small.footprint_blocks() < large.footprint_blocks()


def test_per_core_private_working_sets():
    trace = generate_spec_trace("mcf", num_cores=2, max_accesses=4000)
    blocks_by_core = {0: set(), 1: set()}
    for access in trace:
        blocks_by_core[access.core].add(access.block_address)
    assert not (blocks_by_core[0] & blocks_by_core[1])
