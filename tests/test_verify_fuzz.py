"""Fuzz driver: byte-reproducibility, shrinking, repro files, CLI wiring.

The fuzzer's contract is that ``(seed, budget)`` fully determines its
output — CI replays the same campaign on every run — and that when a
check *does* fail, the minimised repro file on disk re-executes the
failure bit-for-bit.  Real failures are manufactured here by disabling
verify-on-write, which reopens the rollback-heal channel.
"""

import json

import pytest

from repro.__main__ import main
from repro.secure.counters import make_counter_scheme
from repro.secure.functional import FunctionalSecureMemory
from repro.verify import Op, TamperSpec, replay, run_fuzz, shrink_case
from repro.verify import fuzz as fuzz_module
from repro.verify.fuzz import _attack_failures, write_repro


def test_fuzz_summary_is_byte_reproducible(tmp_path):
    first = run_fuzz(seed=3, budget=4, out_dir=tmp_path / "a")
    second = run_fuzz(seed=3, budget=4, out_dir=tmp_path / "b")
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_quick_budget_campaign_is_clean_and_detects_everything(tmp_path):
    summary = run_fuzz(seed=11, budget=6, out_dir=tmp_path / "repros")
    assert summary["clean"], summary["failing_trials"]
    assert summary["injections"] == summary["detections"] > 0
    assert summary["schemes_checked"] == ["monolithic", "morphctr", "split"]
    assert summary["repro_files"] == []
    # Clean campaigns leave no repro files behind.
    assert not (tmp_path / "repros").exists()


def test_campaign_includes_hammer_leg(tmp_path):
    """Every trial also plans and detects activation-earned flips."""
    summary = run_fuzz(seed=11, budget=4, out_dir=tmp_path / "repros")
    assert summary["clean"], summary["failing_trials"]
    assert summary["hammer_injections"] == summary["hammer_detections"] > 0


def test_different_seeds_produce_different_campaigns(tmp_path):
    a = run_fuzz(seed=0, budget=3, out_dir=tmp_path / "a")
    b = run_fuzz(seed=1, budget=3, out_dir=tmp_path / "b")
    assert a["injections"] != b["injections"] or a["detections"] != b["detections"]


# ----------------------------------------------------------------------
# Spec serialisation
# ----------------------------------------------------------------------
def test_op_and_spec_round_trip_through_json():
    op = Op(block=5, is_write=True, payload=b"\x00\xffdata")
    assert Op.from_dict(json.loads(json.dumps(op.to_dict()))) == op
    read_op = Op(block=9, is_write=False)
    assert Op.from_dict(json.loads(json.dumps(read_op.to_dict()))) == read_op
    spec = TamperSpec(kind="rollback", inject_at=7, block=3, snapshot_at=2)
    assert TamperSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


# ----------------------------------------------------------------------
# Shrinking and repro replay (against a genuinely broken memory)
# ----------------------------------------------------------------------
def _unverified_memory(scheme_name: str, num_blocks: int) -> FunctionalSecureMemory:
    # verify_writes=False reopens the rollback-heal channel: a write to
    # the rolled-back line silently accepts the replayed counters.
    return FunctionalSecureMemory(
        num_blocks=num_blocks,
        scheme=make_counter_scheme(scheme_name),
        verify_writes=False,
    )


def _rollback_heal_case():
    # Blocks 0 and 1 share monolithic line 0.  Snapshot after the first
    # write; two more writes move the line on; the rollback lands right
    # before a write to the line, which heals the replay undetectably.
    ops = [
        Op(block=0, is_write=True, payload=b"victim"),
        Op(block=1, is_write=True, payload=b"w1"),
        Op(block=1, is_write=True, payload=b"w2"),
        Op(block=1, is_write=True, payload=b"heal"),
        # Padding the shrinker can discard.
        Op(block=20, is_write=True, payload=b"noise"),
        Op(block=20, is_write=False),
        Op(block=0, is_write=False),
        Op(block=20, is_write=False),
    ]
    schedule = [TamperSpec(kind="rollback", inject_at=3, block=0, snapshot_at=1)]
    return ops, schedule


def test_broken_memory_yields_false_negative_failures(monkeypatch):
    monkeypatch.setattr(fuzz_module, "_make_memory", _unverified_memory)
    ops, schedule = _rollback_heal_case()
    failures, report = _attack_failures("monolithic", 64, ops, schedule)
    assert failures
    assert report is not None and report.false_negatives


def test_shrink_produces_a_smaller_still_failing_case(monkeypatch):
    monkeypatch.setattr(fuzz_module, "_make_memory", _unverified_memory)
    ops, schedule = _rollback_heal_case()
    min_ops, min_schedule = shrink_case("monolithic", 64, list(ops), list(schedule))
    assert len(min_ops) < len(ops)
    assert min_schedule == schedule  # the one event is essential
    failures, _ = _attack_failures("monolithic", 64, min_ops, min_schedule)
    assert failures


def test_repro_file_round_trips_and_replays_the_failure(tmp_path, monkeypatch):
    monkeypatch.setattr(fuzz_module, "_make_memory", _unverified_memory)
    ops, schedule = _rollback_heal_case()
    failures, _ = _attack_failures("monolithic", 64, ops, schedule)
    path = tmp_path / "repro-0-0.json"
    write_repro(path, seed=0, trial=0, scheme_name="monolithic", num_blocks=64,
                ops=ops, schedule=schedule, failures=failures)
    case = json.loads(path.read_text())
    assert case["version"] == 1
    assert case["scheme"] == "monolithic"
    replay_failures, replay_report = replay(path)
    assert replay_failures
    assert replay_report is not None and replay_report.false_negatives


def test_replay_rejects_unknown_repro_versions(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 999}))
    with pytest.raises(ValueError):
        replay(path)


# ----------------------------------------------------------------------
# CLI wiring (python -m repro verify ...)
# ----------------------------------------------------------------------
def test_cli_fuzz_prints_summary_and_exits_zero(tmp_path, capsys):
    code = main(["verify", "fuzz", "--seed", "7", "--budget", "3",
                 "--out", str(tmp_path / "repros")])
    summary = json.loads(capsys.readouterr().out)
    assert code == 0
    assert summary["clean"]
    assert summary["seed"] == 7 and summary["budget"] == 3


def test_cli_attack_reports_clean_run(capsys):
    code = main(["verify", "attack", "--seed", "5", "--ops", "60",
                 "--events", "3", "--blocks", "128", "--scheme", "split"])
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    assert report["false_negatives"] == []
    assert len(report["detections"]) == len(report["schedule"]) > 0


def test_cli_diff_checks_paths_and_invariants(capsys):
    code = main(["verify", "diff", "--design", "cosmos", "--seed", "2",
                 "--accesses", "300"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["paths"]["matched"]
    assert payload["invariants"]["matched"]


def test_cli_hammer_single_pattern_detects_planned_flips(tmp_path, capsys):
    out = tmp_path / "hammer.json"
    code = main(["verify", "hammer", "--pattern", "hammer-double", "--seed", "4",
                 "--accesses", "900", "--out", str(out)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["plan"]["flips"]
    assert payload["report"]["false_negatives"] == []
    assert payload["report"]["false_positives"] == []
    assert payload["report"]["misattributions"] == []
    assert len(payload["report"]["detections"]) == len(payload["plan"]["flips"])
    assert json.loads(out.read_text())["plan"] == payload["plan"]


def test_cli_replay_exit_codes_track_failures(tmp_path, capsys, monkeypatch):
    ops, schedule = _rollback_heal_case()
    failing = tmp_path / "failing.json"
    monkeypatch.setattr(fuzz_module, "_make_memory", _unverified_memory)
    failures, _ = _attack_failures("monolithic", 64, ops, schedule)
    write_repro(failing, seed=0, trial=0, scheme_name="monolithic", num_blocks=64,
                ops=ops, schedule=schedule, failures=failures)
    assert main(["verify", "replay", str(failing)]) == 1
    capsys.readouterr()
    # The same case on a healthy memory is caught — replay reports clean.
    monkeypatch.setattr(fuzz_module, "_make_memory", _healthy_memory)
    assert main(["verify", "replay", str(failing)]) == 0


def _healthy_memory(scheme_name: str, num_blocks: int) -> FunctionalSecureMemory:
    return FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme_name)
    )
