"""Unit tests for the ML inference trace generators."""

import pytest

from repro.workloads.ml import ML_WORKLOADS, generate_ml_trace, model_layers


def test_fig17_models_present():
    assert set(ML_WORKLOADS) == {"alexnet", "resnet", "vgg", "bert", "transformer", "dlrm"}


def test_mlp_has_three_layers():
    assert len(model_layers("mlp")) == 3  # the Fig. 8 generalisation model


def test_bert_has_twelve_encoders():
    assert len(model_layers("bert")) == 12


def test_unknown_model():
    with pytest.raises(ValueError):
        model_layers("gpt")
    with pytest.raises(ValueError):
        generate_ml_trace("gpt")


def test_scale_shrinks_layers():
    small = model_layers("resnet", scale=0.01)
    large = model_layers("resnet", scale=0.1)
    assert sum(l.weight_bytes for l in small) < sum(l.weight_bytes for l in large)


@pytest.mark.parametrize("model", list(ML_WORKLOADS) + ["mlp"])
def test_trace_generation(model):
    trace = generate_ml_trace(model, num_cores=2, max_accesses=3000)
    assert len(trace) == 3000
    assert trace.name == model


def test_streaming_regularity():
    """ML traces are regular: consecutive accesses are mostly sequential."""
    trace = generate_ml_trace("vgg", num_cores=1, max_accesses=6000)
    blocks = [access.block_address for access in trace]
    sequential = sum(1 for a, b in zip(blocks, blocks[1:]) if 0 <= b - a <= 2)
    assert sequential / len(blocks) > 0.8


def test_activation_buffers_rewritten_across_batches():
    """Writes concentrate on the ping-pong activation buffers.

    This is the reuse that drives the paper's Fig. 17 observation that
    re-encryption dominates for ML workloads.
    """
    trace = generate_ml_trace("mlp", num_cores=1, max_accesses=40_000, scale=0.005)
    write_counts = {}
    for access in trace:
        if access.is_write:
            write_counts[access.block_address] = write_counts.get(access.block_address, 0) + 1
    assert write_counts
    assert max(write_counts.values()) >= 3  # same lines rewritten every batch


def test_dlrm_has_irregular_embedding_reads():
    trace = generate_ml_trace("dlrm", num_cores=1, max_accesses=20_000)
    blocks = [access.block_address for access in trace]
    jumps = sum(1 for a, b in zip(blocks, blocks[1:]) if abs(b - a) > 100)
    assert jumps > 10  # embedding lookups jump across the table


def test_threads_share_weights():
    trace = generate_ml_trace("mlp", num_cores=2, max_accesses=20_000)
    blocks_by_core = {0: set(), 1: set()}
    for access in trace:
        if access.core in blocks_by_core:
            blocks_by_core[access.core].add(access.block_address)
    # Cores partition lines of shared structures; the address RANGES overlap.
    assert min(blocks_by_core[0]) < max(blocks_by_core[1])
    assert min(blocks_by_core[1]) < max(blocks_by_core[0])


def test_deterministic():
    a = generate_ml_trace("dlrm", num_cores=1, max_accesses=2000, seed=9)
    b = generate_ml_trace("dlrm", num_cores=1, max_accesses=2000, seed=9)
    assert [x.address for x in a] == [x.address for x in b]
