"""Unit tests for the CTR Evaluation Table."""

import pytest

from repro.core.cet import CtrEvaluationTable


def test_insert_and_exact_probe():
    cet = CtrEvaluationTable(capacity=4, radius=1)
    cet.insert(10, state=3, action=1)
    entry = cet.probe(10)
    assert entry is not None and entry.state == 3 and entry.action == 1
    assert cet.probe(11) is None


def test_probe_nearby_within_radius():
    cet = CtrEvaluationTable(capacity=8, radius=2)
    cet.insert(100, state=1, action=0)
    assert cet.probe_nearby(101) is not None
    assert cet.probe_nearby(102) is not None
    assert cet.probe_nearby(103) is None


def test_probe_nearby_prefers_exact_match():
    cet = CtrEvaluationTable(capacity=8, radius=2)
    cet.insert(100, state=1, action=0)
    cet.insert(101, state=2, action=1)
    assert cet.probe_nearby(101).state == 2


def test_probe_nearby_returns_closest():
    cet = CtrEvaluationTable(capacity=8, radius=4)
    cet.insert(100, state=1, action=0)
    cet.insert(104, state=2, action=0)
    assert cet.probe_nearby(103).state == 2


def test_radius_zero_disables_nearby():
    cet = CtrEvaluationTable(capacity=8, radius=0)
    cet.insert(100, state=1, action=0)
    assert cet.probe_nearby(101) is None
    assert cet.probe_nearby(100) is not None


def test_lru_eviction_returns_victim():
    cet = CtrEvaluationTable(capacity=2, radius=1)
    assert cet.insert(1, 1, 0) is None
    assert cet.insert(2, 2, 0) is None
    evicted = cet.insert(3, 3, 0)
    assert evicted is not None and evicted.ctr_block == 1
    assert len(cet) == 2


def test_probe_refreshes_lru_position():
    cet = CtrEvaluationTable(capacity=2, radius=1)
    cet.insert(1, 1, 0)
    cet.insert(2, 2, 0)
    cet.probe(1)  # refresh 1, making 2 the LRU victim
    evicted = cet.insert(3, 3, 0)
    assert evicted.ctr_block == 2


def test_reinsert_updates_in_place():
    cet = CtrEvaluationTable(capacity=2, radius=1)
    cet.insert(1, 1, 0)
    assert cet.insert(1, 9, 1) is None
    entry = cet.probe(1)
    assert entry.state == 9 and entry.action == 1
    assert len(cet) == 1


def test_head_is_most_recent():
    cet = CtrEvaluationTable(capacity=4, radius=1)
    assert cet.head is None
    cet.insert(1, 1, 0)
    cet.insert(2, 2, 0)
    assert cet.head.ctr_block == 2
    cet.probe(1)
    assert cet.head.ctr_block == 1


def test_evicted_entry_no_longer_nearby():
    cet = CtrEvaluationTable(capacity=1, radius=2)
    cet.insert(10, 1, 0)
    cet.insert(50, 2, 0)  # evicts 10
    assert cet.probe_nearby(11) is None


def test_contains_has_no_lru_side_effect():
    cet = CtrEvaluationTable(capacity=2, radius=1)
    cet.insert(1, 1, 0)
    cet.insert(2, 2, 0)
    assert cet.contains(1)
    evicted = cet.insert(3, 3, 0)
    assert evicted.ctr_block == 1  # contains() did not refresh


def test_invalid_parameters():
    with pytest.raises(ValueError):
        CtrEvaluationTable(capacity=0)
    with pytest.raises(ValueError):
        CtrEvaluationTable(capacity=4, radius=-1)


def test_capacity_respected_under_load():
    cet = CtrEvaluationTable(capacity=16, radius=4)
    for block in range(1000):
        cet.insert(block, block % 7, block % 2)
    assert len(cet) == 16
