"""Tests for the one-command report generator."""

import pytest

from repro.bench import runner
from repro.bench.summary import REPORT_EXPERIMENTS, generate_report


@pytest.fixture(autouse=True)
def tiny_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "3000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.04")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "traces")
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    yield
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()


def test_registry_covers_core_figures():
    names = " ".join(REPORT_EXPERIMENTS)
    for token in ("Figure 2", "Figure 10", "Figure 17", "Table 2"):
        assert token in names


def test_generate_filtered_report(tmp_path):
    path = generate_report(output=tmp_path / "r.md", include=["Table 2"])
    text = path.read_text()
    assert text.startswith("# COSMOS reproduction report")
    assert "## Table 2 - storage overhead" in text
    assert "| component |" in text
    # Only the requested section was run.
    assert "Figure 10" not in text


def test_generate_report_multiple_sections(tmp_path):
    path = generate_report(
        output=tmp_path / "r2.md", include=["Table 2", "Table 4"]
    )
    text = path.read_text()
    assert text.count("## ") == 2


def test_cli_report_command(tmp_path, capsys):
    from repro.__main__ import main

    output = tmp_path / "cli_report.md"
    assert main(["report", "-o", str(output), "Table 2"]) == 0
    assert output.exists()
    assert "wrote" in capsys.readouterr().out
