"""The perf-regression observatory: benchmark history and trend analysis."""

from __future__ import annotations

import json

import pytest

from repro.bench.history import (
    DEFAULT_THRESHOLD,
    HISTORY_SCHEMA,
    analyze_trend,
    append_history,
    format_trend,
    history_entry,
    load_history,
)


def _payload(rate=100000.0, dram=50000.0, n=20000):
    return {
        "schema": "repro.bench.perf/v2",
        "trace": {"kind": "zipf", "n": n, "seed": 11, "write_fraction": 0.3},
        "results": {
            "cosmos": {"accesses_per_sec": rate},
            "cosmos@batched": {"accesses_per_sec": rate * 1.5},
        },
        "dram_microbench": {"requests_per_sec": dram},
    }


def _record(rate=100000.0, python="3.12.1", n=20000, ts=0):
    entry = history_entry(_payload(rate=rate, n=n), sha="abc", now=ts)
    entry["python"] = python
    return entry


# ----------------------------------------------------------------------
# Entry distillation, append, load
# ----------------------------------------------------------------------
def test_history_entry_distils_payload():
    entry = history_entry(_payload(), sha="deadbeef", now=1700000000)
    assert entry["schema"] == HISTORY_SCHEMA
    assert entry["sha"] == "deadbeef" and entry["ts"] == 1700000000
    assert entry["trace"]["n"] == 20000
    assert entry["throughput"] == {"cosmos": 100000.0,
                                   "cosmos@batched": 150000.0}
    assert entry["dram_rps"] == 50000.0
    assert "serve_rps" not in entry


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "hist" / "BENCH_history.jsonl"
    first = append_history(_payload(rate=1000.0), path, sha="aaa")
    second = append_history(_payload(rate=2000.0), path, sha="bbb")
    assert first is not None and second is not None
    records = load_history(path)
    assert [r["sha"] for r in records] == ["aaa", "bbb"]
    assert records[1]["throughput"]["cosmos"] == 2000.0


def test_load_skips_torn_lines(tmp_path):
    path = tmp_path / "h.jsonl"
    append_history(_payload(), path, sha="ok")
    with path.open("a") as handle:
        handle.write('{"torn": tru\n')  # a crashed append mid-line
        handle.write("[1, 2]\n")  # valid JSON, wrong shape
    append_history(_payload(), path, sha="ok2")
    assert [r["sha"] for r in load_history(path)] == ["ok", "ok2"]
    assert load_history(tmp_path / "missing.jsonl") == []


def test_append_never_raises(tmp_path):
    blocked = tmp_path / "file-not-dir"
    blocked.write_text("x")
    assert append_history(_payload(), blocked / "h.jsonl") is None


# ----------------------------------------------------------------------
# Trend analysis
# ----------------------------------------------------------------------
def test_trend_flags_synthetic_drift():
    # Five steady runs, then a 5% drop — far below the 3% lateral CI gate
    # per-run, but unmistakable against the median.
    records = [_record(rate=100000.0, ts=i) for i in range(5)]
    records.append(_record(rate=95000.0, ts=5))
    analysis = analyze_trend(records, window=5, threshold=DEFAULT_THRESHOLD)
    assert analysis["baseline_runs"] == 5
    cosmos = analysis["keys"]["cosmos"]
    assert cosmos["median"] == 100000.0
    assert cosmos["drift"] == pytest.approx(-0.05)
    assert cosmos["flag"] is True
    assert set(analysis["flags"]) == {"cosmos", "cosmos@batched"}
    rendered = format_trend(analysis)
    assert "DRIFT" in rendered and "cosmos" in rendered


def test_trend_tolerates_noise_within_threshold():
    records = [_record(rate=100000.0, ts=i) for i in range(5)]
    records.append(_record(rate=99500.0, ts=5))  # -0.5%: noise, not drift
    analysis = analyze_trend(records, window=5, threshold=0.01)
    assert analysis["flags"] == []
    assert "within" in format_trend(analysis)
    # Improvements never flag.
    records.append(_record(rate=120000.0, ts=6))
    assert analyze_trend(records, window=5, threshold=0.01)["flags"] == []


def test_trend_partitions_on_workload_and_python():
    # Same rate numbers, but different trace length / interpreter: those
    # runs must not pollute the baseline median.
    records = [
        _record(rate=50000.0, n=1000, ts=0),        # different workload
        _record(rate=60000.0, python="3.10.2", ts=1),  # different interpreter
        _record(rate=100000.0, ts=2),
        _record(rate=100000.0, ts=3),
        _record(rate=100000.0, ts=4),
    ]
    analysis = analyze_trend(records, window=5)
    assert analysis["baseline_runs"] == 2
    assert analysis["keys"]["cosmos"]["median"] == 100000.0
    assert analysis["flags"] == []


def test_trend_with_no_history_is_quiet():
    empty = analyze_trend([])
    assert empty == {"latest": None, "baseline_runs": 0, "keys": {},
                     "flags": []}
    assert format_trend(empty) == "no history recorded yet"
    lone = analyze_trend([_record()])
    assert lone["keys"] == {} and lone["flags"] == []
    assert "nothing to compare" in format_trend(lone)


# ----------------------------------------------------------------------
# CLI surface: repro obs bench-trend
# ----------------------------------------------------------------------
def test_bench_trend_cli(tmp_path, capsys):
    from repro.__main__ import main

    path = tmp_path / "BENCH_history.jsonl"
    with path.open("w") as handle:
        for record in [_record(rate=100000.0, ts=i) for i in range(5)] \
                + [_record(rate=90000.0, ts=5)]:
            handle.write(json.dumps(record) + "\n")
    assert main(["obs", "bench-trend", "--history", str(path)]) == 0
    out = capsys.readouterr().out
    assert "DRIFT" in out and "median" in out
    # --strict turns flagged drift into a failing exit code.
    assert main(["obs", "bench-trend", "--history", str(path),
                 "--strict"]) == 1
    # A tolerant threshold clears it.
    assert main(["obs", "bench-trend", "--history", str(path),
                 "--strict", "--threshold", "0.2"]) == 0


def test_bench_trend_cli_without_history(tmp_path, capsys):
    from repro.__main__ import main

    missing = tmp_path / "nope.jsonl"
    assert main(["obs", "bench-trend", "--history", str(missing)]) == 2
    assert "no benchmark history" in capsys.readouterr().err
