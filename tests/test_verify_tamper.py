"""Tamper-injection harness: every attack detected, nothing else fires.

Each tamper class gets a deterministic minimal scenario asserting *which*
check catches it, *where* (tree level), and *how fast* (detection latency
in ops) — plus seeded end-to-end schedules across all three counter
schemes asserting zero false negatives, zero false positives and zero
misattributions.
"""

import random

import pytest

from repro.obs.events import EventRing
from repro.secure.counters import make_counter_scheme
from repro.secure.functional import FunctionalSecureMemory, IntegrityViolation
from repro.verify import (
    AttackHarness,
    Op,
    TamperSpec,
    generate_ops,
    generate_schedule,
)

SCHEMES = ("monolithic", "split", "morphctr")


def make_memory(scheme: str = "monolithic", num_blocks: int = 256, **kwargs):
    return FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme), **kwargs
    )


def W(block: int, tag: int = 0) -> Op:
    return Op(block=block, is_write=True, payload=f"payload-{block}-{tag}".encode())


def R(block: int) -> Op:
    return Op(block=block, is_write=False)


def run_one(ops, schedule, scheme="monolithic", num_blocks=256):
    memory = make_memory(scheme, num_blocks)
    harness = AttackHarness(memory)
    return harness.run(ops, schedule), harness


# ----------------------------------------------------------------------
# One deterministic scenario per tamper class
# ----------------------------------------------------------------------
def test_bitflip_detected_by_mac_on_next_read():
    ops = [W(0), W(9), R(0)]
    spec = TamperSpec(kind="bitflip", inject_at=2, block=0, bit=137)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.kind == "bitflip"
    assert det.detector == "mac"
    assert det.via == "read"
    assert det.latency == 0  # injected inside the read that caught it


def test_bitflip_detected_by_end_of_run_probe():
    ops = [W(0), W(9)]
    spec = TamperSpec(kind="bitflip", inject_at=2, block=0, bit=1)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.via == "probe"
    assert det.detected_at == len(ops)


def test_counter_rollback_detected_at_leaf_level():
    # Blocks 0 and 1 share monolithic line 0; snapshot after the first
    # write, roll back after the second — the restored line state no
    # longer matches the leaf digest.
    ops = [W(0), W(1), W(1, tag=1), R(0)]
    spec = TamperSpec(kind="rollback", inject_at=3, block=0, snapshot_at=1)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.kind == "rollback"
    assert det.detector == "mt"
    assert det.level == 0
    assert det.via == "read"


def test_rollback_caught_by_verify_on_write_before_increment():
    # No read ever touches the rolled-back line; the next write to it
    # must authenticate the counter line *before* incrementing, or the
    # replay would be silently healed.
    ops = [W(0), W(1), W(1, tag=1), W(2)]
    spec = TamperSpec(kind="rollback", inject_at=3, block=0, snapshot_at=1)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.via == "write"
    assert det.detector == "mt"
    assert det.level == 0


def test_disabling_verify_on_write_is_flagged_as_false_negative():
    # With verify-on-write off, the heal write lands on the rolled-back
    # line and the replay becomes undetectable: the harness must report
    # the false negative rather than crash or pass.
    memory = make_memory(verify_writes=False)
    ops = [W(0), W(1), W(1, tag=1), W(1, tag=2)]
    spec = TamperSpec(kind="rollback", inject_at=3, block=0, snapshot_at=1)
    report = AttackHarness(memory).run(ops, [spec])
    assert not report.clean
    assert report.false_negatives


def test_stale_mac_forgery_detected_by_ctr_binding():
    # Replay block 0's old (ciphertext, MAC) pair after a second write
    # moved its counter on: the stale MAC is bound to the stale counter.
    ops = [W(0), W(0, tag=1), R(0)]
    spec = TamperSpec(kind="stale_mac", inject_at=2, block=0, snapshot_at=1)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.kind == "stale_mac"
    assert det.detector == "mac"


def test_mt_splice_detected_one_level_above_under_the_node():
    # 256 blocks / monolithic -> 32 leaves, 5 internal levels.  Splice
    # node (1, 0); a read under the node fails when the node is
    # recomputed from its honest children: level 2.
    ops = [W(0), W(40), R(0)]
    spec = TamperSpec(kind="splice", inject_at=2, block=0, level=1)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.kind == "splice"
    assert det.detector == "mt"
    assert det.level == 2


def test_mt_splice_detected_two_levels_above_beside_the_node():
    # Node (1, 0) covers leaves 0-3 (blocks 0-31); block 40 (leaf 5) is
    # under the *parent* (2, 0) but beside the spliced node, so its
    # verification fails one level higher, when the parent is recomputed
    # from children including the tampered digest.
    ops = [W(0), W(40), R(40)]
    spec = TamperSpec(kind="splice", inject_at=2, block=0, level=1)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.level == 3


def test_cross_address_swap_detected_on_either_side():
    for probe_block in (0, 9):
        ops = [W(0), W(9), R(probe_block)]
        spec = TamperSpec(kind="swap", inject_at=2, block=0, partner=9)
        report, _ = run_one(ops, [spec])
        assert report.clean, report.failures()
        (det,) = report.detections
        assert det.detector == "mac"
        assert det.block == probe_block


# ----------------------------------------------------------------------
# Healing protection
# ----------------------------------------------------------------------
def test_probe_fires_before_a_write_can_heal_mac_tampering():
    # The bitflip is armed when op 3 is about to overwrite the victim —
    # the harness must probe-read first or the evidence is destroyed.
    ops = [W(0), W(9), R(9), W(0, tag=1)]
    spec = TamperSpec(kind="bitflip", inject_at=2, block=0, bit=5)
    report, _ = run_one(ops, [spec])
    assert report.clean, report.failures()
    (det,) = report.detections
    assert det.via == "probe_heal"
    assert det.detected_at == 3


def test_recovery_after_detection_preserves_contents():
    # After every detection the harness undoes the injection and retries;
    # subsequent reads must decrypt to exactly what was written.
    ops = [W(0), W(9), R(0), R(0), W(0, tag=1), R(0)]
    spec = TamperSpec(kind="bitflip", inject_at=2, block=0, bit=200)
    memory = make_memory()
    report = AttackHarness(memory).run(ops, [spec])
    assert report.clean, report.failures()
    assert memory.read(0).rstrip(b"\x00") == b"payload-0-1"


# ----------------------------------------------------------------------
# Zero false positives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
def test_control_run_is_completely_silent(scheme):
    rng = random.Random(f"control:{scheme}")
    ops = generate_ops(rng, 150, 256, footprint_blocks=64, write_fraction=0.5)
    memory = make_memory(scheme)
    report = AttackHarness(memory).run(ops, ())
    assert report.clean
    assert not report.detections
    assert memory.stats.violations_detected == 0


# ----------------------------------------------------------------------
# Seeded end-to-end schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_every_generated_injection_is_detected(scheme, seed):
    rng = random.Random(f"e2e:{seed}:{scheme}")
    memory = make_memory(scheme)
    ops = generate_ops(rng, 90, 256, footprint_blocks=64, write_fraction=0.6)
    schedule = generate_schedule(rng, ops, memory, max_events=4)
    assert schedule, "generator produced an empty schedule"
    report = AttackHarness(memory).run(ops, schedule)
    assert report.clean, report.failures()
    assert len(report.detections) == len(schedule)
    assert not report.misattributions


def test_schedule_generation_is_deterministic():
    def build():
        rng = random.Random("sched:42")
        memory = make_memory("monolithic")
        ops = generate_ops(rng, 70, 256, footprint_blocks=48)
        return generate_schedule(rng, ops, memory, max_events=4)

    assert build() == build()


# ----------------------------------------------------------------------
# Obs event ring integration
# ----------------------------------------------------------------------
def test_event_ring_records_injection_latency_and_level():
    ring = EventRing()
    memory = make_memory()
    ops = [W(0), W(40), R(0)]
    spec = TamperSpec(kind="splice", inject_at=2, block=0, level=1)
    report = AttackHarness(memory, events=ring).run(ops, [spec])
    assert report.clean, report.failures()
    (injected,) = ring.filter("tamper_injected")
    assert injected["tamper"] == "splice"
    assert injected["at"] == 2
    (detected,) = ring.filter("tamper_detected")
    assert detected["latency"] == 0
    assert detected["level"] == 2
    assert detected["detector"] == "mt"
    # The memory's own violation events ride the same ring.
    assert ring.filter("integrity_violation")


# ----------------------------------------------------------------------
# Memory-level verify-on-write semantics (independent of the harness)
# ----------------------------------------------------------------------
def test_write_authenticates_counter_line_before_increment():
    memory = make_memory()
    memory.write(0, b"first")
    snapshot = memory.scheme.snapshot_line(0)
    memory.write(1, b"second")
    memory.scheme.restore_line(0, snapshot)
    with pytest.raises(IntegrityViolation) as excinfo:
        memory.write(0, b"heal attempt")
    assert excinfo.value.kind == "mt"
    assert excinfo.value.level == 0
