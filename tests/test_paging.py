"""Tests for the virtual-to-physical page mappers."""

import pytest

from repro.mem.access import MemoryAccess
from repro.mem.paging import (
    PAGE_SIZE,
    FirstTouchPageMapper,
    IdentityPageMapper,
    RandomizedPageMapper,
    remap_accesses,
)


def test_identity_is_noop():
    mapper = IdentityPageMapper()
    for address in (0, 4095, 4096, 1 << 30):
        assert mapper.translate(address) == address


class TestFirstTouch:
    def test_dense_packing_in_touch_order(self):
        mapper = FirstTouchPageMapper()
        a = mapper.translate(10 * PAGE_SIZE)  # first touch -> frame 0
        b = mapper.translate(99 * PAGE_SIZE)  # second touch -> frame 1
        assert a == 0
        assert b == PAGE_SIZE

    def test_offset_preserved(self):
        mapper = FirstTouchPageMapper()
        assert mapper.translate(10 * PAGE_SIZE + 123) % PAGE_SIZE == 123

    def test_stable_mapping(self):
        mapper = FirstTouchPageMapper()
        first = mapper.translate(5 * PAGE_SIZE + 7)
        again = mapper.translate(5 * PAGE_SIZE + 7)
        assert first == again
        assert mapper.mapped_pages == 1

    def test_base_frame(self):
        mapper = FirstTouchPageMapper(base_frame=100)
        assert mapper.translate(0) == 100 * PAGE_SIZE


class TestRandomized:
    def test_collision_free(self):
        mapper = RandomizedPageMapper(seed=1)
        frames = {mapper.translate(vpn * PAGE_SIZE) >> 12 for vpn in range(2000)}
        assert len(frames) == 2000

    def test_deterministic_per_seed(self):
        a = RandomizedPageMapper(seed=3)
        b = RandomizedPageMapper(seed=3)
        for vpn in range(100):
            assert a.translate(vpn * PAGE_SIZE) == b.translate(vpn * PAGE_SIZE)

    def test_seeds_differ(self):
        a = RandomizedPageMapper(seed=1)
        b = RandomizedPageMapper(seed=2)
        outputs_a = [a.translate(vpn * PAGE_SIZE) for vpn in range(50)]
        outputs_b = [b.translate(vpn * PAGE_SIZE) for vpn in range(50)]
        assert outputs_a != outputs_b

    def test_offset_preserved(self):
        mapper = RandomizedPageMapper(seed=5)
        assert mapper.translate(PAGE_SIZE + 61) % PAGE_SIZE == 61

    def test_frame_exhaustion(self):
        mapper = RandomizedPageMapper(seed=0, frame_space=4)
        for vpn in range(4):
            mapper.translate(vpn * PAGE_SIZE)
        with pytest.raises(RuntimeError):
            mapper.translate(99 * PAGE_SIZE)

    def test_invalid_frame_space(self):
        with pytest.raises(ValueError):
            RandomizedPageMapper(frame_space=0)

    def test_breaks_cross_page_contiguity(self):
        """Adjacent virtual pages land far apart physically (usually)."""
        mapper = RandomizedPageMapper(seed=7)
        adjacent = 0
        for vpn in range(0, 200, 2):
            a = mapper.translate(vpn * PAGE_SIZE) >> 12
            b = mapper.translate((vpn + 1) * PAGE_SIZE) >> 12
            if abs(a - b) == 1:
                adjacent += 1
        assert adjacent < 5


def test_remap_accesses_preserves_type_and_core():
    from repro.mem.access import AccessType

    mapper = FirstTouchPageMapper()
    accesses = [MemoryAccess(123, AccessType.WRITE, 2), MemoryAccess(PAGE_SIZE + 1)]
    remapped = remap_accesses(accesses, mapper)
    assert remapped[0].type == AccessType.WRITE
    assert remapped[0].core == 2
    assert remapped[0].address % PAGE_SIZE == 123
    assert len(remapped) == 2


def test_remap_same_page_same_frame():
    mapper = RandomizedPageMapper(seed=1)
    accesses = [MemoryAccess(100), MemoryAccess(200)]
    remapped = remap_accesses(accesses, mapper)
    assert remapped[0].address >> 12 == remapped[1].address >> 12
