"""Tests for the terminal chart renderers."""

from repro.bench.charts import bar_chart, series_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes_mapped(self):
        line = sparkline([0, 100, 0])
        assert line == "▁█▁"


class TestBarChart:
    def test_rows_and_values(self):
        chart = bar_chart({"a": 1.0, "bb": 0.5}, width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "1" in lines[0]
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_max_value_caps_bars(self):
        chart = bar_chart({"x": 10.0}, width=10, max_value=5.0)
        assert chart.count("█") == 10  # clipped to full width

    def test_unit_suffix(self):
        assert "ms" in bar_chart({"x": 3.0}, unit="ms")

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values(self):
        chart = bar_chart({"x": 0.0})
        assert "·" in chart


class TestSeriesChart:
    def test_contains_all_markers_and_legend(self):
        chart = series_chart([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "o=up" in chart
        assert "x=down" in chart
        assert chart.count("o") >= 3

    def test_crossover_visible(self):
        chart = series_chart([0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]})
        lines = chart.splitlines()
        top = lines[0]
        bottom = lines[-3]
        assert ("x" in top and "o" in top) or True  # both extremes populated
        assert "o" in top + bottom and "x" in top + bottom

    def test_empty(self):
        assert series_chart([], {}) == "(no data)"

    def test_axis_labels_monotone(self):
        chart = series_chart([0, 1, 2], {"s": [0, 5, 10]}, height=4)
        labels = [float(line.split("|")[0]) for line in chart.splitlines()[:-2]]
        assert labels == sorted(labels, reverse=True)
