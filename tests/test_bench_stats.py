"""Tests for the multi-seed statistics helpers."""

import pytest

from repro.bench import runner
from repro.bench.stats import SampleSummary, SeededComparison, compare_over_seeds


class TestSampleSummary:
    def test_mean_and_std(self):
        summary = SampleSummary((1.0, 2.0, 3.0))
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(1.0)
        assert summary.n == 3

    def test_empty_and_single(self):
        assert SampleSummary(()).mean == 0.0
        single = SampleSummary((5.0,))
        assert single.std == 0.0
        assert single.ci_halfwidth == 0.0

    def test_interval_contains_mean(self):
        summary = SampleSummary((1.0, 1.2, 1.1, 1.3))
        low, high = summary.interval
        assert low < summary.mean < high

    def test_tight_samples_give_tight_interval(self):
        tight = SampleSummary((1.10, 1.11, 1.09, 1.10))
        loose = SampleSummary((0.5, 1.7, 1.1, 0.9))
        assert tight.ci_halfwidth < loose.ci_halfwidth

    def test_excludes(self):
        summary = SampleSummary((1.2, 1.25, 1.22, 1.18))
        assert summary.excludes(1.0)
        assert not summary.excludes(1.21)


class TestSeededComparison:
    def test_significant_gain_logic(self):
        comparison = SeededComparison("cosmos", "morphctr", "dfs",
                                      seeds=[1, 2, 3],
                                      speedups=[1.2, 1.25, 1.22])
        assert comparison.significant_gain
        noisy = SeededComparison("cosmos", "morphctr", "dfs",
                                 seeds=[1, 2], speedups=[0.8, 1.4])
        assert not noisy.significant_gain

    def test_single_seed_never_significant(self):
        single = SeededComparison("a", "b", "w", seeds=[1], speedups=[1.5])
        assert not single.significant_gain


def test_compare_over_seeds_end_to_end(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "6000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.1")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "traces")
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    comparison = compare_over_seeds("cosmos", "morphctr", "dfs", seeds=(1, 2))
    assert len(comparison.speedups) == 2
    assert all(speedup > 0 for speedup in comparison.speedups)
    # Different seeds produced genuinely different traces.
    assert comparison.speedups[0] != comparison.speedups[1]
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
