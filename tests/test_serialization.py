"""Tests for trace serialisation and multi-programmed mixes."""

import numpy as np
import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.workloads.micro import stream_trace, uniform_random_trace
from repro.workloads.serialization import FORMAT_VERSION, load_trace, save_trace
from repro.workloads.trace import Trace, multiprogram


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        trace = uniform_random_trace(n=500, seed=3, write_fraction=0.4)
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        assert [a.address for a in loaded] == [a.address for a in trace]
        assert [a.type for a in loaded] == [a.type for a in trace]
        assert [a.core for a in loaded] == [a.core for a in trace]

    def test_metadata_preserved(self, tmp_path):
        trace = Trace("x", [MemoryAccess(64)], metadata={"seed": 7, "kind": "demo"})
        loaded = load_trace(save_trace(trace, tmp_path / "x.npz"))
        assert loaded.metadata["seed"] == 7
        assert loaded.metadata["kind"] == "demo"

    def test_suffix_added(self, tmp_path):
        path = save_trace(stream_trace(n=10), tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_array_rejected(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, addresses=np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_future_version_rejected(self, tmp_path):
        trace = stream_trace(n=5)
        path = save_trace(trace, tmp_path / "v.npz")
        data = dict(np.load(path))
        import json

        header = json.dumps({"version": FORMAT_VERSION + 1})
        data["header"] = np.frombuffer(header.encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated_archive_rejected_as_value_error(self, tmp_path):
        # A partially-copied cache file must surface as ValueError (the
        # cache-miss signal), whatever stage of the zip parse it dies in:
        # empty file, torn magic, or a member cut mid-decompression.
        trace = uniform_random_trace(n=2000, seed=5)
        path = save_trace(trace, tmp_path / "t.npz")
        data = path.read_bytes()
        for keep in (0, 10, len(data) // 2, len(data) - 7):
            path.write_bytes(data[:keep])
            with pytest.raises(ValueError):
                load_trace(path)

    def test_garbage_archive_rejected_as_value_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_compression_is_compact(self, tmp_path):
        trace = stream_trace(n=50_000)
        path = save_trace(trace, tmp_path / "big.npz")
        assert path.stat().st_size < 400_000  # far below 50k * 11B raw


class TestMultiprogram:
    def test_cores_assigned_in_order(self):
        mixed = multiprogram([stream_trace(n=10), stream_trace(n=10)])
        assert mixed.core_counts() == {0: 10, 1: 10}

    def test_address_spaces_disjoint(self):
        mixed = multiprogram(
            [stream_trace(n=100), stream_trace(n=100)], address_stride=1 << 30
        )
        per_core = {0: set(), 1: set()}
        for access in mixed:
            per_core[access.core].add(access.address)
        assert not (per_core[0] & per_core[1])

    def test_name_and_metadata(self):
        mixed = multiprogram([stream_trace(n=4), uniform_random_trace(n=4)])
        assert mixed.name == "stream+uniform"
        assert mixed.metadata["programs"] == ["stream", "uniform"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multiprogram([])

    def test_simulates_through_multicore_design(self):
        from repro.sim.config import small_test_config
        from repro.sim.simulator import simulate

        mixed = multiprogram(
            [stream_trace(n=3000), uniform_random_trace(n=3000, seed=1)]
        )
        config = small_test_config(num_cores=2)
        result = simulate("cosmos", mixed, config, workload=mixed.name)
        assert result.accesses == 6000
