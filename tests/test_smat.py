"""Unit tests for the SMAT model (Eqs. 1-2)."""

import pytest

from repro.sim.smat import SmatInputs, ctr_term, smat, smat_unprotected


def inputs(**overrides):
    base = dict(
        l1_latency=2, l2_latency=20, llc_latency=128, dram_latency=96,
        ctr_hit_latency=4, ctr_dram_latency=96, ctr_verify_latency=40,
        mr_l1=0.4, mr_l2=0.6, mr_llc=0.9, mr_ctr=0.9,
    )
    base.update(overrides)
    return SmatInputs(**base)


def test_ctr_term_formula():
    value = ctr_term(inputs(mr_ctr=0.5))
    assert value == pytest.approx(4 + 0.5 * (96 + 40))


def test_smat_expands_equation1():
    i = inputs()
    expected = 2 + 0.4 * (20 + 0.6 * (128 + 0.9 * (ctr_term(i) + 96)))
    assert smat(i) == pytest.approx(expected)


def test_unprotected_drops_ctr_term():
    i = inputs()
    assert smat_unprotected(i) < smat(i)
    expected = 2 + 0.4 * (20 + 0.6 * (128 + 0.9 * 96))
    assert smat_unprotected(i) == pytest.approx(expected)


def test_perfect_l1_reduces_to_l1_latency():
    i = inputs(mr_l1=0.0)
    assert smat(i) == 2


def test_lower_ctr_miss_means_lower_smat():
    assert smat(inputs(mr_ctr=0.3)) < smat(inputs(mr_ctr=0.9))


def test_smat_monotone_in_every_miss_rate():
    base = smat(inputs())
    assert smat(inputs(mr_l1=0.2)) < base
    assert smat(inputs(mr_l2=0.3)) < base
    assert smat(inputs(mr_llc=0.5)) < base


def test_invalid_miss_rates_rejected():
    with pytest.raises(ValueError):
        inputs(mr_ctr=1.5)
    with pytest.raises(ValueError):
        inputs(mr_l1=-0.1)
