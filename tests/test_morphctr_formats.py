"""Focused tests on MorphCtr's morphable format machinery."""

import pytest

from repro.secure.counters import MorphCtrCounters


class TestFormatBoundaries:
    def test_uniform_holds_exactly_to_seven(self):
        assert MorphCtrCounters.format_of({block: 7 for block in range(128)}) == "uniform"

    def test_dense_eights_overflow(self):
        minors = {block: 8 for block in range(128)}
        # 128-bit bitmap + 128 x 4-bit = 640 > 448: not representable.
        assert MorphCtrCounters.format_of(minors) == "overflow"

    def test_zcc_boundary_at_bitmap_plus_minors(self):
        # nnz * width <= 448 - 128 = 320 bits.
        assert MorphCtrCounters.format_of({0: 1 << 319}) == "overflow" or True
        # 80 non-zero 4-bit minors: 128 + 320 = 448 fits exactly.
        fits = {block: 8 for block in range(80)}
        assert MorphCtrCounters.format_of(fits) == "zcc"
        # 81 breaks it.
        breaks = {block: 8 for block in range(81)}
        assert MorphCtrCounters.format_of(breaks) == "overflow"

    def test_single_huge_minor_fits_zcc(self):
        assert MorphCtrCounters.format_of({0: (1 << 300) - 1}) == "zcc"

    def test_empty_line_is_uniform(self):
        assert MorphCtrCounters.format_of({}) == "uniform"


class TestIncrementalConsistency:
    def test_incremental_matches_batch_check(self):
        """The fast-path increment agrees with the reference predicate."""
        import random

        rng = random.Random(3)
        scheme = MorphCtrCounters()
        for _ in range(3000):
            block = rng.randrange(64) if rng.random() < 0.7 else rng.randrange(128)
            scheme.increment(block)
            line = scheme._lines[0]
            # Whatever the increment left behind must be representable.
            assert MorphCtrCounters.representable(line.minors), line.minors

    def test_overflow_resets_state(self):
        scheme = MorphCtrCounters()
        event = None
        while event is None:
            for block in range(128):
                event = scheme.increment(block)
                if event:
                    break
        line = scheme._lines[0]
        assert line.minors == {}
        assert line.max_minor == 0
        assert line.major >= 1

    def test_updates_counter_survives_overflow(self):
        scheme = MorphCtrCounters()
        total = 0
        event = None
        while event is None:
            for block in range(128):
                total += 1
                event = scheme.increment(block)
                if event:
                    break
        assert scheme.updates_to(0) == total

    def test_sparse_hot_block_goes_deep(self):
        """ZCC lets one hot block take hundreds of updates (paper: the
        re-encryption rarity claim for graph workloads)."""
        scheme = MorphCtrCounters()
        for index in range(320):
            assert scheme.increment(5) is None, f"overflowed at {index}"

    def test_per_line_isolation(self):
        scheme = MorphCtrCounters()
        for _ in range(10):
            scheme.increment(0)      # line 0
            scheme.increment(128)    # line 1
        assert scheme.line_format(0) in ("uniform", "zcc")
        assert scheme.counter_value(0) != scheme.counter_value(128) or True
        assert scheme.updates_to(0) == 10
        assert scheme.updates_to(1) == 10


def test_paper_sixtyseven_update_regime():
    """Sanity vs the paper's '1000 overflows per 1M writes' observation.

    Spread-out graph-style writes (each block written a handful of times)
    produce very rare overflows under MorphCtr.
    """
    import random

    rng = random.Random(9)
    scheme = MorphCtrCounters()
    overflows = 0
    writes = 50_000
    for _ in range(writes):
        block = rng.randrange(10_000)  # ~5 writes per block on average
        if scheme.increment(block) is not None:
            overflows += 1
    assert overflows / writes < 0.01
