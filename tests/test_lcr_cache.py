"""Unit tests for the LCR replacement policy (Algorithm 2 + aging)."""

import pytest

from repro.core.lcr_cache import FLAG_BAD, FLAG_GOOD, LcrReplacementPolicy
from repro.mem.replacement import CacheLine


def tagged_line(tag, flag, score, tick=0):
    line = CacheLine(tag)
    line.locality_flag = flag
    line.locality_score = score
    line.lru_tick = tick
    return line


def test_bad_lines_evicted_before_good():
    policy = LcrReplacementPolicy(aging=0)
    lines = [tagged_line(0, FLAG_GOOD, 1), tagged_line(1, FLAG_BAD, 1)]
    assert policy.victim(0, lines).tag == 1


def test_strict_mode_picks_highest_bad_score():
    policy = LcrReplacementPolicy(aging=0, bad_selection="score")
    lines = [
        tagged_line(0, FLAG_BAD, 10),
        tagged_line(1, FLAG_BAD, 90),
        tagged_line(2, FLAG_BAD, 50),
    ]
    assert policy.victim(0, lines).tag == 1


def test_lru_mode_picks_oldest_bad():
    policy = LcrReplacementPolicy(aging=0, bad_selection="lru")
    lines = [
        tagged_line(0, FLAG_BAD, 10, tick=5),
        tagged_line(1, FLAG_BAD, 90, tick=1),
        tagged_line(2, FLAG_BAD, 50, tick=9),
    ]
    assert policy.victim(0, lines).tag == 1


def test_all_good_evicts_lowest_score():
    policy = LcrReplacementPolicy(aging=0)
    lines = [
        tagged_line(0, FLAG_GOOD, 70),
        tagged_line(1, FLAG_GOOD, 5),
        tagged_line(2, FLAG_GOOD, 30),
    ]
    assert policy.victim(0, lines).tag == 1


def test_aging_demotes_stale_good_lines():
    policy = LcrReplacementPolicy(aging=10, aging_period=1)
    good = tagged_line(0, FLAG_GOOD, 5)
    bad = tagged_line(1, FLAG_BAD, 1)
    policy.victim(0, [good, bad])  # decays good score 5 -> -5 -> demoted
    assert good.locality_flag == FLAG_BAD
    assert good.locality_score == 0


def test_aging_period_delays_decay():
    policy = LcrReplacementPolicy(aging=10, aging_period=3)
    good = tagged_line(0, FLAG_GOOD, 15)
    bad = tagged_line(1, FLAG_BAD, 1)
    policy.victim(0, [good, bad])
    policy.victim(0, [good, bad])
    assert good.locality_score == 15  # not yet
    policy.victim(0, [good, bad])
    assert good.locality_score == 5  # third call decays once


def test_aging_is_per_set():
    policy = LcrReplacementPolicy(aging=10, aging_period=2)
    good = tagged_line(0, FLAG_GOOD, 15)
    bad = tagged_line(1, FLAG_BAD, 1)
    policy.victim(0, [good, bad])
    policy.victim(1, [good, bad])  # different set: separate pressure counter
    assert good.locality_score == 15


def test_on_hit_refreshes_recency():
    policy = LcrReplacementPolicy(aging=0, bad_selection="lru")
    a = tagged_line(0, FLAG_BAD, 1)
    b = tagged_line(1, FLAG_BAD, 1)
    policy.on_insert(0, a)
    policy.on_insert(0, b)
    policy.on_hit(0, a)
    assert policy.victim(0, [a, b]).tag == 1


def test_invalid_parameters():
    with pytest.raises(ValueError):
        LcrReplacementPolicy(aging=-1)
    with pytest.raises(ValueError):
        LcrReplacementPolicy(aging_period=0)
    with pytest.raises(ValueError):
        LcrReplacementPolicy(bad_selection="fifo")


def test_empty_set_asserts():
    policy = LcrReplacementPolicy()
    with pytest.raises(AssertionError):
        policy.victim(0, [])
