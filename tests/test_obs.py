"""Unit tests for the ``repro.obs`` observability layer.

Covers the four facilities in isolation — registry, spans, event ring,
time-series — plus the enable/disable switch semantics that make the
whole layer free when off.
"""

from __future__ import annotations

import json
import logging
import math

import pytest

from repro import obs
from repro.obs.registry import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM


# ----------------------------------------------------------------------
# Switch
# ----------------------------------------------------------------------
def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv(obs.OBS_ENV, raising=False)
    assert not obs.enabled()
    assert obs.registry() is obs.NULL_SINK


@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("yes", True),
    ("0", False), ("false", False), ("", False), ("off", False),
])
def test_env_switch(monkeypatch, value, expected):
    monkeypatch.setenv(obs.OBS_ENV, value)
    assert obs.enabled() is expected


def test_override_beats_env(monkeypatch):
    monkeypatch.setenv(obs.OBS_ENV, "1")
    with obs.overridden(False):
        assert not obs.enabled()
        assert obs.registry() is obs.NULL_SINK
    assert obs.enabled()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_idempotent_registration():
    registry = obs.MetricsRegistry()
    counter = registry.counter("exec.jobs")
    counter.inc()
    counter.inc(4)
    assert registry.counter("exec.jobs") is counter
    assert registry.counter("exec.jobs").value == 5


def test_registry_kind_conflict():
    registry = obs.MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_callback_gauge_reads_live_value():
    registry = obs.MetricsRegistry()
    state = {"v": 1.0}
    gauge = registry.gauge("sim.hit_rate", fn=lambda: state["v"])
    assert gauge.value == 1.0
    state["v"] = 0.25
    assert gauge.value == 0.25
    assert registry.snapshot() == {"sim.hit_rate": 0.25}


def test_histogram_buckets_and_mean():
    registry = obs.MetricsRegistry()
    hist = registry.histogram("wall", bounds=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.counts == [1, 1, 1]
    assert hist.total == 3
    assert hist.mean == pytest.approx(55.5 / 3)
    with pytest.raises(ValueError):
        obs.Histogram("bad", bounds=(2.0, 1.0))


def test_names_prefix_filter():
    registry = obs.MetricsRegistry()
    registry.counter("exec.jobs")
    registry.counter("exec.jobs_failed")
    registry.counter("sim.accesses")
    assert registry.names("exec") == ["exec.jobs", "exec.jobs_failed"]
    assert len(registry) == 3
    registry.clear()
    assert len(registry) == 0


def test_null_sink_is_inert():
    assert obs.NULL_SINK.counter("a") is NULL_COUNTER
    assert obs.NULL_SINK.gauge("b") is NULL_GAUGE
    assert obs.NULL_SINK.histogram("c") is NULL_HISTOGRAM
    NULL_COUNTER.inc(100)
    NULL_GAUGE.set(9.0)
    NULL_HISTOGRAM.observe(3.0)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0.0
    assert obs.NULL_SINK.snapshot() == {}


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_noop_without_recorder():
    assert obs.active_recorder() is None
    with obs.span("anything") as node:
        assert node is None  # shared null context


def test_span_tree_nesting_and_export():
    recorder = obs.SpanRecorder("run")
    with obs.recording(recorder):
        with obs.span("outer", workload="dfs"):
            with obs.span("inner"):
                pass
            with obs.span("inner2"):
                pass
    assert [s.name for s in recorder.roots] == ["outer"]
    assert [c.name for c in recorder.roots[0].children] == ["inner", "inner2"]
    payload = recorder.to_dict()
    rebuilt = obs.SpanRecorder.tree_from_dict(payload)
    assert rebuilt[0].name == "outer"
    assert rebuilt[0].meta == {"workload": "dfs"}
    assert len(rebuilt[0].children) == 2


def test_span_exception_unwind():
    recorder = obs.SpanRecorder()
    with obs.recording(recorder):
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise RuntimeError("boom")
        with obs.span("after"):
            pass
    assert [s.name for s in recorder.roots] == ["outer", "after"]


def test_chrome_trace_format():
    recorder = obs.SpanRecorder()
    with obs.recording(recorder):
        with obs.span("phase", detail=7):
            pass
    events = recorder.to_chrome_trace(pid=1, tid=2)
    assert len(events) == 1
    event = events[0]
    assert event["ph"] == "X"
    assert event["name"] == "phase"
    assert event["pid"] == 1 and event["tid"] == 2
    assert event["dur"] >= 0
    assert event["args"] == {"detail": "7"}
    json.dumps(events)  # must be JSON-serialisable as-is


def test_recording_restores_previous():
    first = obs.SpanRecorder("first")
    obs.install_recorder(first)
    second = obs.SpanRecorder("second")
    with obs.recording(second):
        assert obs.active_recorder() is second
    assert obs.active_recorder() is first
    obs.install_recorder(None)


# ----------------------------------------------------------------------
# Event ring
# ----------------------------------------------------------------------
def test_event_ring_bounded():
    ring = obs.EventRing(capacity=4)
    for i in range(10):
        ring.record("overflow", at=i, index=i)
    assert ring.dropped == 6
    retained = ring.to_list()
    assert len(retained) == 4
    assert [e["at"] for e in retained] == [6, 7, 8, 9]
    summary = ring.summary()
    assert summary["total"] == 10
    assert summary["retained"] == 4
    assert summary["by_kind"] == {"overflow": 10}


def test_event_ring_jsonl_roundtrip():
    ring = obs.EventRing()
    ring.record("storm", at=5, overflows=40)
    ring.record("flip", at=9, direction="bad")
    events = obs.load_jsonl(ring.to_jsonl())
    assert [e["kind"] for e in events] == ["storm", "flip"]
    assert events[0]["overflows"] == 40


# ----------------------------------------------------------------------
# Time series
# ----------------------------------------------------------------------
def test_timeseries_nan_backfill_and_summary():
    series = obs.TimeSeries(interval=10)
    series.append(10, {"a": 1.0})
    series.append(20, {"a": 2.0, "b": 4.0})
    assert len(series) == 2
    assert math.isnan(series.columns["b"][0])
    summary = series.summary()
    assert summary["a"] == {"mean": 1.5, "min": 1.0, "max": 2.0, "last": 2.0}
    assert summary["b"]["last"] == 4.0


def test_timeseries_npz_roundtrip(tmp_path):
    series = obs.TimeSeries(interval=100, meta={"design": "cosmos"})
    series.append(100, {"hit_rate": 0.5})
    series.append(200, {"hit_rate": 0.75})
    path = series.save(tmp_path / "timeseries.npz")
    assert path.suffix == ".npz"
    loaded = obs.TimeSeries.load(path)
    assert loaded.interval == 100
    assert loaded.meta["design"] == "cosmos"
    assert loaded.axis == [100, 200]
    assert loaded.columns["hit_rate"] == [0.5, 0.75]


def test_timeseries_jsonl_roundtrip(tmp_path):
    series = obs.TimeSeries(interval=5)
    series.append(5, {"x": 1.0})
    series.append(10, {"x": math.nan, "y": 2.0})
    path = series._save_jsonl(tmp_path / "timeseries.jsonl", {"interval": 5})
    loaded = obs.TimeSeries.load(path)
    assert loaded.axis == [5, 10]
    assert math.isnan(loaded.columns["x"][1])
    assert loaded.columns["y"][1] == 2.0


def test_sample_interval_env(monkeypatch):
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "2500")
    assert obs.sample_interval() == 2500
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "garbage")
    assert obs.sample_interval() == 10_000
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "-3")
    assert obs.sample_interval() == 1


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
def test_logging_level_env(monkeypatch):
    from repro.obs.log import setup_logging

    monkeypatch.setenv("REPRO_LOG", "debug")
    logger = setup_logging()
    assert logger.level == logging.DEBUG
    monkeypatch.setenv("REPRO_LOG", "warning")
    assert setup_logging().level == logging.WARNING
    # Idempotent: repeated setup installs exactly one handler.
    setup_logging()
    assert len(logger.handlers) == 1


def test_logging_clears_ticker_line(capsys):
    import sys

    from repro.exec.telemetry import ProgressTicker
    from repro.obs.log import get_logger, setup_logging

    setup_logging(level=logging.INFO, stream=sys.stderr, force=True)
    ticker = ProgressTicker(total=3, enabled=True)
    ticker.update(1, 0, 1, force=True)
    get_logger("exec").info("hello from the logger")
    ticker.close()
    err = capsys.readouterr().err
    assert "hello from the logger" in err
    # The ticker line was erased (a \r + spaces wipe) before the record.
    wipe_index = err.index("\r ")
    assert wipe_index < err.index("hello")
