"""Unit tests for the reporting helpers."""

import pytest

from repro.bench.report import format_table, geometric_mean, print_experiment


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_between_min_and_max(self):
        values = [0.5, 0.7, 0.9]
        mean = geometric_mean(values)
        assert min(values) < mean < max(values)


class TestFormatTable:
    def test_renders_header_and_rows(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456789}])
        assert "0.1235" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"


def test_print_experiment_outputs_title_and_notes(capsys):
    print_experiment("My Title", [{"x": 1}], notes=["a note"])
    out = capsys.readouterr().out
    assert "My Title" in out
    assert "a note" in out
    assert "x" in out
