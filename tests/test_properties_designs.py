"""Property-based tests on whole designs (hypothesis-driven traces)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.mem.access import AccessType, MemoryAccess
from repro.mem.hierarchy import HierarchyConfig, LevelConfig
from repro.secure.designs import make_design
from repro.secure.engine import EngineConfig
from repro.secure.layout import SecureLayout

SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

access_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 18) - 1),  # block
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=400,
)


def build(name):
    hierarchy = HierarchyConfig(
        num_cores=1,
        l1=LevelConfig(2 * 1024, 2, 2),
        l2=LevelConfig(8 * 1024, 4, 20),
        llc=LevelConfig(32 * 1024, 8, 128),
        l2_prefetcher="none",
    )
    kwargs = {
        "hierarchy_config": hierarchy,
        "layout": SecureLayout(data_blocks=1 << 20, blocks_per_ctr=128),
    }
    if name != "np":
        kwargs["engine_config"] = EngineConfig(
            ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024
        )
    return make_design(name, **kwargs)


def to_trace(pairs):
    return [
        MemoryAccess(block * 64, AccessType.WRITE if w else AccessType.READ)
        for block, w in pairs
    ]


@SETTINGS
@given(pairs=access_lists, name=st.sampled_from(["np", "morphctr", "cosmos", "emcc"]))
def test_latency_bounded_below_by_l1(pairs, name):
    design = build(name)
    for access in to_trace(pairs):
        assert design.process(access) >= 2  # never cheaper than an L1 hit


@SETTINGS
@given(pairs=access_lists)
def test_morphctr_ctr_reads_track_misses(pairs):
    design = build("morphctr")
    for access in to_trace(pairs):
        design.process(access)
    traffic = design.traffic()
    # Every CTR DRAM read corresponds to a CTR cache miss.
    assert traffic.ctr_reads == design.engine.ctr_cache.stats.misses
    # Demand data reads are exactly the LLC misses (no prefetcher).
    assert traffic.data_reads == design.stats.llc_misses


@SETTINGS
@given(pairs=access_lists)
def test_mt_reads_bounded_by_tree_depth(pairs):
    design = build("morphctr")
    for access in to_trace(pairs):
        design.process(access)
    traffic = design.traffic()
    depth = design.layout.mt_levels
    assert traffic.mt_reads <= (traffic.ctr_reads + traffic.ctr_writes) * depth


@SETTINGS
@given(pairs=access_lists)
def test_hierarchy_stats_conserved_across_designs(pairs):
    """Cache behaviour is design-independent: same trace, same misses."""
    trace = to_trace(pairs)
    reference = build("np")
    for access in trace:
        reference.process(access)
    for name in ("morphctr", "cosmos"):
        design = build(name)
        for access in trace:
            design.process(access)
        assert design.hierarchy.llc.stats.misses == reference.hierarchy.llc.stats.misses
        assert design.stats.l1_misses == reference.stats.l1_misses


@SETTINGS
@given(pairs=access_lists)
def test_cosmos_prediction_accounting_consistent(pairs):
    design = build("cosmos")
    for access in to_trace(pairs):
        design.process(access)
    location = design.controller.location.stats
    # Every L1 miss produced exactly one graded prediction.
    assert location.predictions == design.stats.l1_misses
    assert (
        design.stats.bypasses + design.stats.fallback_fetches
        == design.stats.llc_misses
    )


@SETTINGS
@given(pairs=access_lists)
def test_writes_eventually_counted(pairs):
    """Flushing the hierarchy drains every dirty line to the write path."""
    design = build("morphctr")
    writes = 0
    for access in to_trace(pairs):
        design.process(access)
        if access.is_write:
            writes += 1
    design.hierarchy.flush()
    # Distinct written blocks <= secure writes observed <= total writes.
    distinct_written = len({p[0] for p in pairs if p[1]})
    assert design.engine.events.writes_seen >= distinct_written
