"""Focused tests for the RMCC-style hot-counter memoisation."""

import random

from repro.mem.access import MemoryAccess
from repro.mem.hierarchy import HierarchyConfig, LevelConfig
from repro.secure.designs import RmccDesign
from repro.secure.engine import EngineConfig
from repro.secure.layout import SecureLayout


def make_rmcc(memo_entries=64):
    return RmccDesign(
        hierarchy_config=HierarchyConfig(
            num_cores=1,
            l1=LevelConfig(2 * 1024, 2, 2),
            l2=LevelConfig(8 * 1024, 4, 20),
            llc=LevelConfig(32 * 1024, 8, 128),
            l2_prefetcher="none",
        ),
        layout=SecureLayout(data_blocks=1 << 22, blocks_per_ctr=128),
        engine_config=EngineConfig(ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024),
        memo_entries=memo_entries,
    )


def test_memo_fills_up_to_capacity():
    design = make_rmcc(memo_entries=4)
    rng = random.Random(0)
    for _ in range(5000):
        design.process(MemoryAccess(rng.randrange(1 << 16) * 64))
    assert len(design._memo) <= 4


def test_hot_counter_gets_memoised():
    design = make_rmcc(memo_entries=8)
    rng = random.Random(1)
    hot_ctr_block = 7 * 128  # blocks 896..1023 share counter line 7
    for _ in range(4000):
        # Alternate a hot counter page with cold noise.
        design.process(MemoryAccess((hot_ctr_block + rng.randrange(128)) * 64))
        design.process(MemoryAccess(rng.randrange(1 << 16) * 64))
    assert 7 in design._memo
    assert design.memo_hits > 0


def test_cold_counters_displaced_by_hotter_ones():
    design = make_rmcc(memo_entries=2)
    # Touch counter lines 0 and 1 once (cold), then hammer lines 2 and 3.
    for ctr in (0, 1):
        design.process(MemoryAccess(ctr * 128 * 64))
    rng = random.Random(2)
    for _ in range(3000):
        ctr = 2 + rng.randrange(2)
        design.process(MemoryAccess((ctr * 128 + rng.randrange(128)) * 64))
        design.process(MemoryAccess(rng.randrange(1 << 17) * 64))  # LLC churn
    assert 2 in design._memo or 3 in design._memo


def test_memo_hit_shortens_latency():
    design = make_rmcc(memo_entries=8)
    rng = random.Random(3)
    # Warm the memo with a hot counter page while churning the caches.
    latencies = []
    for index in range(6000):
        block = (5 * 128 + rng.randrange(128))
        latencies.append(design.process(MemoryAccess(block * 64)))
        design.process(MemoryAccess(rng.randrange(1 << 17) * 64))
    assert design.memo_hits > 0
    # Once memoised, misses to the hot page avoid the CTR-DRAM wait: the
    # cheapest late-run fetch beats the cold first fetch.
    assert min(latencies[-100:]) <= latencies[0]
