"""Unit tests for the AES-CTR one-time-pad model."""

import pytest

from repro.secure.aes import AES_LATENCY_CYCLES, AesCtrEngine, LINE_BYTES


def test_encrypt_decrypt_roundtrip():
    engine = AesCtrEngine()
    plaintext = bytes(range(64))
    ciphertext = engine.encrypt(plaintext, physical_address=0x1000, counter=5)
    assert ciphertext != plaintext
    assert engine.decrypt(ciphertext, physical_address=0x1000, counter=5) == plaintext


def test_different_counters_give_different_ciphertexts():
    engine = AesCtrEngine()
    plaintext = b"\x00" * 64
    c1 = engine.encrypt(plaintext, 0x1000, counter=1)
    c2 = engine.encrypt(plaintext, 0x1000, counter=2)
    assert c1 != c2


def test_different_addresses_give_different_pads():
    engine = AesCtrEngine()
    plaintext = b"\x00" * 64
    assert engine.encrypt(plaintext, 0x1000, 1) != engine.encrypt(plaintext, 0x2000, 1)


def test_different_keys_give_different_pads():
    plaintext = b"\x00" * 64
    a = AesCtrEngine(key=b"key-a").encrypt(plaintext, 0, 0)
    b = AesCtrEngine(key=b"key-b").encrypt(plaintext, 0, 0)
    assert a != b


def test_pad_is_deterministic():
    engine = AesCtrEngine()
    assert engine.one_time_pad(10, 20) == engine.one_time_pad(10, 20)


def test_pad_length():
    engine = AesCtrEngine()
    assert len(engine.one_time_pad(0, 0)) == LINE_BYTES
    assert len(engine.one_time_pad(0, 0, length=100)) == 100


def test_pad_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        AesCtrEngine().one_time_pad(0, 0, length=0)


def test_decrypt_with_wrong_counter_garbles():
    engine = AesCtrEngine()
    plaintext = b"secret data under counter mode!!" * 2
    ciphertext = engine.encrypt(plaintext, 0x40, counter=7)
    assert engine.decrypt(ciphertext, 0x40, counter=8) != plaintext


def test_latency_constant_from_paper():
    assert AES_LATENCY_CYCLES == 40
    assert AesCtrEngine().latency_cycles == 40
