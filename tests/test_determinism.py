"""Reproducibility: identical inputs must give bit-identical results.

Every stochastic element in the stack (graph synthesis, workload RNGs,
epsilon-greedy exploration, random replacement) is seeded, so a rerun of
any experiment must produce exactly the same numbers — the property the
benchmark result cache and the EXPERIMENTS.md tables rely on.
"""

import pytest

from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.workloads.graph_algos import generate_graph_trace
from repro.workloads.spec import generate_spec_trace


@pytest.fixture(scope="module")
def trace():
    return generate_graph_trace("bfs", num_cores=2, max_accesses=8000, graph_scale=0.1)


@pytest.mark.parametrize("design", ["np", "morphctr", "cosmos", "emcc", "rmcc",
                                    "cosmos-early", "cosmos-synergy"])
def test_design_runs_are_bit_identical(design, trace):
    config = small_test_config(num_cores=2)
    first = simulate(design, trace, config, workload="bfs")
    second = simulate(design, trace, config, workload="bfs")
    assert first.cycles == second.cycles
    assert first.total_latency == second.total_latency
    assert first.ctr_miss_rate == second.ctr_miss_rate
    assert first.traffic.as_dict() == second.traffic.as_dict()
    assert first.extra == second.extra


def test_exploration_is_seeded_not_global(trace):
    """COSMOS's epsilon-greedy must not depend on global random state."""
    import random

    config = small_test_config(num_cores=2)
    random.seed(111)
    first = simulate("cosmos", trace, config, workload="bfs")
    random.seed(999)
    second = simulate("cosmos", trace, config, workload="bfs")
    assert first.cycles == second.cycles


def test_trace_generation_independent_of_global_seed():
    import random

    random.seed(1)
    a = generate_spec_trace("mcf", num_cores=1, max_accesses=2000)
    random.seed(2)
    b = generate_spec_trace("mcf", num_cores=1, max_accesses=2000)
    assert [x.address for x in a] == [x.address for x in b]


def _matrix_dump(matrix) -> str:
    import json

    return json.dumps(
        {w: {d: r.to_dict() for d, r in row.items()} for w, row in matrix.items()},
        sort_keys=True,
    )


def test_matrix_identical_across_jobs_and_cache_modes(tmp_path, monkeypatch):
    """Same seed => byte-identical results: serial vs --jobs 4, cache on/off.

    Five configurations of the same design matrix — serial and 4-way
    parallel, with the result cache disabled, cold and warm — must all
    serialise to the same JSON bytes.  (On a machine without enough cores
    the pool may fall back to fewer workers; determinism must hold
    regardless.)
    """
    from repro.bench import runner

    monkeypatch.setenv("REPRO_TRACE_LEN", "2000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.04")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
    designs = ["np", "cosmos"]
    workloads = ["bfs", "dfs"]
    dumps = []
    for jobs, use_cache in ((1, False), (4, False), (1, True), (4, True), (1, True)):
        runner._MEMORY_CACHE.clear()
        runner._RESULT_CACHE.clear()
        matrix = runner.run_design_matrix(
            designs, workloads, jobs=jobs, use_cache=use_cache
        )
        dumps.append(_matrix_dump(matrix))
    assert all(d == dumps[0] for d in dumps[1:])
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()


def test_hammer_matrix_identical_across_jobs_and_cache_modes(tmp_path, monkeypatch):
    """RowHammer aggressor workloads obey the same determinism contract:
    same seed => byte-identical results, serial vs --jobs 4, cache on/off."""
    from repro.bench import runner

    monkeypatch.setenv("REPRO_TRACE_LEN", "1500")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
    designs = ["np", "cosmos"]
    workloads = ["hammer-double", "hammer-mixed"]
    dumps = []
    for jobs, use_cache in ((1, False), (4, False), (1, True), (4, True)):
        runner._MEMORY_CACHE.clear()
        runner._RESULT_CACHE.clear()
        matrix = runner.run_design_matrix(
            designs, workloads, jobs=jobs, use_cache=use_cache
        )
        dumps.append(_matrix_dump(matrix))
    assert all(d == dumps[0] for d in dumps[1:])
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()


def test_hammer_verdicts_reproducible():
    """Planner + harness verdicts are a pure function of the seed."""
    import json

    from repro.verify.hammer import run_hammer_attack
    from repro.verify.hammer import ops_from_trace
    from repro.workloads.hammer import generate_hammer_trace

    dumps = []
    for _ in range(2):
        trace = generate_hammer_trace(
            "hammer-many", num_cores=2, max_accesses=900, seed=6, start=0
        )
        plan, report = run_hammer_attack(
            ops_from_trace(trace, 1 << 12), scheme="split", seed=6
        )
        dumps.append(json.dumps(
            {"plan": plan.to_dict(), "report": report.to_dict()}, sort_keys=True
        ))
    assert dumps[0] == dumps[1]


def test_experiment_rows_reproducible(tmp_path, monkeypatch):
    from repro.bench import experiments, runner

    monkeypatch.setenv("REPRO_TRACE_LEN", "3000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.04")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "traces")
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    first = experiments.figure2(workloads=["dfs"], quiet=True)
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    second = experiments.figure2(workloads=["dfs"], quiet=True)
    assert first == second
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
