"""Behavioural checks per graph kernel: each touches what it should."""

import pytest

from repro.workloads.graph import GraphMemoryLayout, preferential_attachment_graph
from repro.workloads.graph_algos import generate_graph_trace


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(400, edges_per_vertex=4, seed=21)


def region_hits(trace, layout, region_name):
    base, size = layout.allocator.regions[region_name]
    return sum(1 for access in trace if base <= access.address < base + size)


def layout_for(trace_kernel, graph):
    """Rebuild the layout the generator used (deterministic)."""
    layout = GraphMemoryLayout(graph)
    for prop in ("visited", "rank", "rank_next", "out_degree", "color",
                 "triangles", "label", "dist", "centrality"):
        layout.property_array(prop)
    return layout


@pytest.mark.parametrize("kernel,props", [
    ("bfs", ["prop:visited"]),
    ("dfs", ["prop:visited"]),
    ("pr", ["prop:rank", "prop:rank_next", "prop:out_degree"]),
    ("gc", ["prop:color"]),
    ("cc", ["prop:label"]),
    ("sp", ["prop:dist"]),
    ("dc", ["prop:centrality"]),
])
def test_kernels_touch_their_property_arrays(kernel, props, graph):
    trace = generate_graph_trace(kernel, graph=graph, num_cores=1, max_accesses=6000)
    layout = layout_for(kernel, graph)
    for prop in props:
        assert region_hits(trace, layout, prop) > 0, f"{kernel} never touched {prop}"


@pytest.mark.parametrize("kernel", ["bfs", "dfs", "pr", "gc", "tc", "cc", "sp", "dc"])
def test_kernels_read_adjacency(kernel, graph):
    trace = generate_graph_trace(kernel, graph=graph, num_cores=1, max_accesses=6000)
    layout = layout_for(kernel, graph)
    assert region_hits(trace, layout, "edge_pool") > 0
    assert region_hits(trace, layout, "row_ptr") > 0


def test_pr_writes_rank_next_not_visited(graph):
    trace = generate_graph_trace("pr", graph=graph, num_cores=1, max_accesses=6000)
    layout = layout_for("pr", graph)
    base, size = layout.allocator.regions["prop:rank_next"]
    writes = sum(
        1 for access in trace
        if access.is_write and base <= access.address < base + size
    )
    assert writes > 0
    visited_base, visited_size = layout.allocator.regions["prop:visited"]
    visited_touches = sum(
        1 for access in trace
        if visited_base <= access.address < visited_base + visited_size
    )
    assert visited_touches == 0  # PageRank has no visited array


def test_sp_writes_distances(graph):
    trace = generate_graph_trace("sp", graph=graph, num_cores=1, max_accesses=6000)
    layout = layout_for("sp", graph)
    base, size = layout.allocator.regions["prop:dist"]
    writes = sum(
        1 for access in trace
        if access.is_write and base <= access.address < base + size
    )
    assert writes > 0


def test_dc_is_mostly_reads(graph):
    trace = generate_graph_trace("dc", graph=graph, num_cores=1, max_accesses=6000)
    assert trace.write_fraction < 0.2  # one centrality write per vertex


def test_tc_reads_dominate(graph):
    trace = generate_graph_trace("tc", graph=graph, num_cores=1, max_accesses=6000)
    assert trace.write_fraction < 0.05  # triangle counting only tallies


def test_all_addresses_within_allocated_regions(graph):
    trace = generate_graph_trace("bfs", graph=graph, num_cores=2, max_accesses=4000)
    layout = layout_for("bfs", graph)
    # Scratch regions are allocated after the shared structures; anything
    # the trace touches must be below the allocator's high-water mark plus
    # per-core scratch.
    from repro.workloads.trace import HEAP_BASE

    upper = HEAP_BASE + layout.footprint_bytes + 2 * 128 * 1024
    for access in trace.accesses[:2000]:
        assert HEAP_BASE <= access.address < upper
