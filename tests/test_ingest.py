"""Tests for external trace ingest (repro.workloads.ingest)."""

import gzip

import pytest

from repro.bench.runner import get_trace
from repro.workloads import (
    TraceFormatError,
    detect_format,
    load_external_trace,
)

RAMULATOR = """\
# ramulator load-store trace
0x400140 R
LD 4195648
ST 0x400180 1
W 0x4001c0
// a comment line
0x400200 READ 2
"""

GEM5 = """\
# tick,cmd,addr,size
1000,ReadReq,4195648,64
2000,WriteReq,0x400180,64
3000,r,4195776
4000,w,0x400240
"""


@pytest.fixture
def ram_path(tmp_path):
    path = tmp_path / "stream.trace"
    path.write_text(RAMULATOR)
    return path


@pytest.fixture
def gem5_path(tmp_path):
    path = tmp_path / "packets.csv"
    path.write_text(GEM5)
    return path


class TestRamulatorFormat:
    def test_parses_addresses_ops_cores(self, ram_path):
        trace = load_external_trace(ram_path)
        arrays = trace.arrays()
        assert list(arrays.addresses) == [
            0x400140, 4195648, 0x400180, 0x4001C0, 0x400200
        ]
        assert list(arrays.types) == [0, 0, 1, 1, 0]
        assert list(arrays.cores) == [0, 0, 1, 0, 2]

    def test_metadata_records_provenance(self, ram_path):
        trace = load_external_trace(ram_path)
        assert trace.metadata["format"] == "ramulator"
        assert trace.metadata["requests"] == 5
        assert trace.metadata["source"] == str(ram_path)
        assert trace.name == "trace:stream.trace"

    def test_op_before_address_accepted(self, tmp_path):
        path = tmp_path / "swapped.trace"
        path.write_text("R 0x100\nST 0x140\n")
        arrays = load_external_trace(path).arrays()
        assert list(arrays.addresses) == [0x100, 0x140]
        assert list(arrays.types) == [0, 1]

    def test_bad_token_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("0x100 R\n0x140 FROB\n")
        with pytest.raises(TraceFormatError, match=r"bad\.trace:2"):
            load_external_trace(path)


class TestGem5Format:
    def test_parses_csv_rows(self, gem5_path):
        trace = load_external_trace(gem5_path)
        arrays = trace.arrays()
        assert list(arrays.addresses) == [4195648, 0x400180, 4195776, 0x400240]
        assert list(arrays.types) == [0, 1, 0, 1]

    def test_unknown_command_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1000,FlushReq,0x100\n")
        with pytest.raises(TraceFormatError, match="FlushReq"):
            load_external_trace(path)


class TestFormatHandling:
    def test_auto_detect(self, ram_path, gem5_path):
        assert detect_format(ram_path) == "ramulator"
        assert detect_format(gem5_path) == "gem5"
        assert load_external_trace(gem5_path).metadata["format"] == "gem5"

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "stream.trace.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(RAMULATOR)
        trace = load_external_trace(path)
        assert len(trace) == 5

    def test_unknown_format_rejected(self, ram_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            load_external_trace(ram_path, fmt="vhdl")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="no requests"):
            load_external_trace(path)

    def test_max_accesses_truncates(self, ram_path):
        trace = load_external_trace(ram_path, max_accesses=2)
        assert len(trace) == 2


class TestRunnerIntegration:
    def test_trace_prefix_resolves(self, ram_path):
        trace = get_trace(f"trace:{ram_path}")
        assert len(trace) == 5
        assert trace.metadata["format"] == "ramulator"

    def test_trace_prefix_honours_max_accesses(self, ram_path):
        trace = get_trace(f"trace:{ram_path}", max_accesses=3)
        assert len(trace) == 3

    def test_simulates_end_to_end(self, ram_path):
        from repro.bench.runner import run_design

        result = run_design("cosmos", f"trace:{ram_path}")
        assert result.instructions > 0
        assert result.ipc > 0
