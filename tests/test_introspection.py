"""Tests for the RL introspection utilities."""

import pytest

from repro.core.introspection import policy_agreement, q_value_histogram, snapshot_policy
from repro.core.rl import QTable


def trained_table(states=8, bias_action=1):
    table = QTable(states, 2)
    for state in range(states // 2):  # train half the states
        table.update(state, bias_action, reward=20, alpha=1.0, gamma=0.0)
    return table


class TestSnapshot:
    def test_untrained_table(self):
        snapshot = snapshot_policy(QTable(16, 2))
        assert snapshot.coverage == 0.0
        assert snapshot.mean_abs_q == 0.0
        assert snapshot.mean_margin == 0.0
        assert snapshot.dominant_action == 0  # ties resolve low

    def test_coverage_counts_touched_states(self):
        snapshot = snapshot_policy(trained_table(states=8))
        assert snapshot.coverage == pytest.approx(0.5)
        assert snapshot.touched_states == 4

    def test_action_counts_sum_to_states(self):
        snapshot = snapshot_policy(trained_table(states=10))
        assert sum(snapshot.action_counts) == 10

    def test_dominant_action_tracks_training(self):
        table = QTable(4, 2)
        for state in range(4):
            table.update(state, 1, reward=30, alpha=1.0, gamma=0.0)
        assert snapshot_policy(table).dominant_action == 1

    def test_entropy_zero_when_unanimous(self):
        table = QTable(4, 2)
        for state in range(4):
            table.update(state, 0, reward=10, alpha=1.0, gamma=0.0)
        assert snapshot_policy(table).decision_entropy_bits == 0.0

    def test_entropy_one_bit_when_split(self):
        table = QTable(4, 2)
        for state in (0, 1):
            table.update(state, 1, reward=10, alpha=1.0, gamma=0.0)
        # States 2, 3 default to action 0; 2/2 split -> 1 bit.
        assert snapshot_policy(table).decision_entropy_bits == pytest.approx(1.0)

    def test_margin_reflects_confidence(self):
        confident = QTable(2, 2)
        confident.update(0, 1, reward=100, alpha=1.0, gamma=0.0)
        confident.update(1, 1, reward=100, alpha=1.0, gamma=0.0)
        timid = QTable(2, 2)
        timid.update(0, 1, reward=1, alpha=1.0, gamma=0.0)
        assert (
            snapshot_policy(confident).mean_margin
            > snapshot_policy(timid).mean_margin
        )


class TestHistogram:
    def test_counts_cover_all_values(self):
        table = trained_table(states=8)
        histogram = q_value_histogram(table, bins=4)
        assert sum(histogram["counts"]) == 8 * 2
        assert len(histogram["edges"]) == 5

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            q_value_histogram(QTable(2, 2), bins=0)

    def test_edges_monotone(self):
        histogram = q_value_histogram(trained_table(), bins=8)
        edges = histogram["edges"]
        assert edges == sorted(edges)


class TestAgreement:
    def test_identical_tables_agree(self):
        table = trained_table()
        assert policy_agreement(table, table) == 1.0

    def test_opposite_tables_disagree(self):
        a = QTable(4, 2)
        b = QTable(4, 2)
        for state in range(4):
            a.update(state, 0, reward=10, alpha=1.0, gamma=0.0)
            b.update(state, 1, reward=10, alpha=1.0, gamma=0.0)
        assert policy_agreement(a, b) == 0.0

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            policy_agreement(QTable(2, 2), QTable(4, 2))

    def test_agreement_rises_as_policy_stabilises(self):
        """End-to-end: checkpoints converge on a stationary workload."""
        import copy
        import random

        from repro.core.config import CosmosConfig, Hyperparameters
        from repro.core.location_predictor import DataLocationPredictor

        # Few distinct blocks relative to states keeps each hashed state
        # pure (all-on-chip or all-off-chip), so the policy can stabilise.
        predictor = DataLocationPredictor(
            CosmosConfig(num_states=1024, hyper=Hyperparameters(epsilon_d=0.05))
        )
        rng = random.Random(0)

        def run(n):
            for _ in range(n):
                block = rng.randrange(256)
                action, state = predictor.predict(block)
                predictor.train(state, action, actually_on_chip=block < 128)

        run(1000)
        early = copy.deepcopy(predictor.q_table)
        run(4000)
        mid = copy.deepcopy(predictor.q_table)
        run(4000)
        late = predictor.q_table
        assert policy_agreement(mid, late) >= policy_agreement(early, late) - 0.05
        assert policy_agreement(mid, late) > 0.8
