"""Smoke test for the tracked hot-path performance harness.

The full benchmark (100k accesses x 3 repeats x 3 designs) is far too slow
for the unit suite, so this runs the same code path on a few thousand
accesses and validates the ``BENCH_hotpath.json`` schema.  Guarded by
``REPRO_QUICK=1`` (set by the CI workflow) so plain local runs skip it.
"""

import json
import os

import pytest

from repro.bench.perf import (
    DEFAULT_DESIGNS,
    SCHEMA,
    format_report,
    main,
    measure_dram,
    measure_serve,
    run_benchmark,
    write_report,
)

# Evaluated at collection time, before the hermetic-env fixture strips the
# variable: the guard reflects the environment pytest was launched with.
QUICK = os.environ.get("REPRO_QUICK") == "1"

pytestmark = pytest.mark.skipif(
    not QUICK, reason="perf smoke runs under REPRO_QUICK=1 (the CI tier-1 job)"
)

PAYLOAD_KEYS = {"schema", "generated_unix", "python", "trace", "repeats", "results"}
ENTRY_KEYS = {
    "accesses",
    "best_seconds",
    "runs_seconds",
    "accesses_per_sec",
    "cycles",
    "total_latency",
    "ctr_miss_rate",
    "path",
}


def test_run_benchmark_payload_schema():
    payload = run_benchmark(designs=("np", "cosmos"), n=3000, repeats=1,
                            serve=False)
    assert payload["schema"] == SCHEMA
    assert PAYLOAD_KEYS <= set(payload)
    assert payload["trace"]["kind"] == "zipf"
    assert payload["trace"]["n"] == 3000
    assert set(payload["results"]) == {"np", "cosmos"}
    for entry in payload["results"].values():
        assert set(entry) == ENTRY_KEYS
        assert entry["accesses"] == 3000
        assert entry["best_seconds"] > 0
        assert entry["accesses_per_sec"] > 0
        assert len(entry["runs_seconds"]) == 1
        assert entry["path"] == "arrays"
    assert "accesses/sec" in format_report(payload)


def test_run_benchmark_per_path_entries():
    """Non-arrays paths get ``design@path`` keys and metric-identical riders."""
    payload = run_benchmark(designs=("cosmos",), n=3000, repeats=1,
                            serve=False, paths=("arrays", "batched"))
    assert set(payload["results"]) == {"cosmos", "cosmos@batched"}
    scalar = payload["results"]["cosmos"]
    batched = payload["results"]["cosmos@batched"]
    assert scalar["path"] == "arrays"
    assert batched["path"] == "batched"
    for key in ("accesses", "cycles", "total_latency", "ctr_miss_rate"):
        assert scalar[key] == batched[key]


def test_dram_microbench_entry():
    entry = measure_dram(n=5000, repeats=1)
    assert entry["requests"] == 5000
    assert entry["requests_per_sec"] > 0
    assert 0.0 < entry["row_hit_rate"] < 1.0
    assert entry["avg_read_latency"] > 0
    assert entry["avg_write_latency"] > 0
    payload = run_benchmark(designs=("np",), n=2000, repeats=1, serve=False)
    assert set(payload["dram_microbench"]) == set(entry)
    assert "requests/sec" in format_report(payload)


def test_serve_microbench_entry():
    entry = measure_serve(requests=40, warm_specs=4, repeats=1)
    assert entry["requests"] == 40
    assert entry["warm_specs"] == 4
    assert entry["best_seconds"] > 0
    assert entry["requests_per_sec"] > 0
    # Every timed submit must be a cache hit: only the warm-up executes.
    assert entry["jobs_executed"] == 4


def test_serve_only_cli(capsys):
    assert main(["--serve", "--serve-requests", "40", "--repeats", "1"]) == 0
    assert "requests/sec" in capsys.readouterr().out


def test_dram_only_cli(capsys):
    assert main(["--dram-only", "--dram-n", "3000", "--repeats", "1"]) == 0
    assert "requests/sec" in capsys.readouterr().out


def test_cli_writes_valid_report(tmp_path, capsys):
    output = tmp_path / "BENCH_hotpath.json"
    code = main(
        ["--designs", "np", "--n", "2000", "--repeats", "1", "--output", str(output)]
    )
    assert code == 0
    loaded = json.loads(output.read_text())
    assert loaded["schema"] == SCHEMA
    assert set(loaded["results"]) == {"np"}
    assert loaded["serve_microbench"]["requests_per_sec"] > 0
    assert capsys.readouterr().out  # human summary printed alongside the JSON


def test_cli_path_flag(tmp_path, capsys):
    output = tmp_path / "BENCH_hotpath.json"
    code = main(
        ["--designs", "np", "--n", "2000", "--repeats", "1",
         "--path", "arrays,batched", "--output", str(output)]
    )
    assert code == 0
    loaded = json.loads(output.read_text())
    assert set(loaded["results"]) == {"np", "np@batched"}
    assert capsys.readouterr().out


def test_default_designs_are_the_tracked_set():
    assert DEFAULT_DESIGNS == ("np", "morphctr", "cosmos")
