"""Tests for the parallel runner: fallback, retry, timeout, determinism."""

import time
from pathlib import Path

import pytest

from repro.bench import runner as bench_runner
from repro.exec import (
    ExecutionError,
    JobSpec,
    ParallelRunner,
    ResultCache,
    make_spec,
)
from repro.sim.config import small_test_config


def make_job(**overrides):
    base = dict(design="np", workload="dfs", config=small_test_config(),
                num_cores=1, trace_length=400, graph_scale=0.02)
    base.update(overrides)
    return JobSpec(**base)


# Stub job functions must live at module top level so the pool can pickle
# them by reference.
def _echo_job(spec):
    return f"done:{spec.design}/{spec.workload}"


def _boom_job(spec):
    raise RuntimeError("synthetic failure")


def _hang_job(spec):
    time.sleep(60)


def _hang_once_job(spec):
    # First attempt: leave a marker and wedge.  Retry: return promptly.
    flag = Path(spec.workload)
    if not flag.exists():
        flag.write_text("attempt 1")
        time.sleep(60)
    return "recovered"


@pytest.fixture
def quick_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "2000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.02")
    monkeypatch.setattr(bench_runner, "CACHE_DIR", tmp_path / "traces")
    bench_runner._MEMORY_CACHE.clear()
    bench_runner._RESULT_CACHE.clear()
    yield
    bench_runner._MEMORY_CACHE.clear()
    bench_runner._RESULT_CACHE.clear()


# ----------------------------------------------------------------------
# Serial execution and retries
# ----------------------------------------------------------------------
def test_serial_executes_in_process():
    spec = make_job()
    out = ParallelRunner(jobs=1, fn=_echo_job, ticker=False).run([spec])
    assert out[spec.content_hash()] == "done:np/dfs"


def test_duplicate_specs_collapse_to_one_job():
    calls = []

    def counting(spec):
        calls.append(spec.design)
        return "ok"

    spec = make_job()
    runner = ParallelRunner(jobs=1, fn=counting, ticker=False)
    out = runner.run([spec, make_job(), spec])
    assert calls == ["np"]
    assert len(out) == 1
    assert runner.report.total == 1
    assert runner.report.duplicates == 2
    assert "2 deduped" in runner.report.summary_line()


def test_jobs_source_and_duplicates_land_in_the_manifest(tmp_path):
    import json

    runner = ParallelRunner(jobs=1, fn=_echo_job, ticker=False,
                            jobs_source="auto",
                            manifest_dir=tmp_path / "manifests")
    spec = make_job()
    runner.run([spec, make_job(design="morphctr"), spec])
    manifest = json.loads(runner.report.manifest_path.read_text())
    assert manifest["jobs_source"] == "auto"
    assert manifest["totals"]["duplicates"] == 1
    assert manifest["totals"]["jobs"] == 2


def test_retry_then_success():
    attempts = []

    def flaky(spec):
        attempts.append(1)
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return "ok"

    spec = make_job()
    runner = ParallelRunner(jobs=1, retries=2, fn=flaky, ticker=False)
    out = runner.run([spec])
    assert out[spec.content_hash()] == "ok"
    assert len(attempts) == 3
    record = runner.report.records[0]
    assert record.status == "ok" and record.attempts == 3


def test_retries_exhausted_raises_execution_error():
    runner = ParallelRunner(jobs=1, retries=1, fn=_boom_job, ticker=False)
    with pytest.raises(ExecutionError) as excinfo:
        runner.run([make_job()])
    assert "synthetic failure" in str(excinfo.value)
    assert runner.report.failed == 1
    assert runner.report.records[0].attempts == 2  # 1 try + 1 retry


def test_non_strict_returns_partial_results():
    def half(spec):
        if spec.design == "np":
            raise RuntimeError("nope")
        return "ok"

    good, bad = make_job(design="morphctr"), make_job(design="np")
    runner = ParallelRunner(jobs=1, retries=0, fn=half, strict=False, ticker=False)
    out = runner.run([good, bad])
    assert out == {good.content_hash(): "ok"}


# ----------------------------------------------------------------------
# Cache integration
# ----------------------------------------------------------------------
def test_cache_short_circuits_execution(quick_env, tmp_path):
    spec = make_spec("np", "dfs", config=small_test_config(), num_cores=1,
                     max_accesses=400)
    cache = ResultCache(tmp_path / "results")
    first = ParallelRunner(jobs=1, cache=cache, ticker=False)
    out1 = first.run([spec])
    assert first.report.cache_hits == 0

    second = ParallelRunner(jobs=1, cache=ResultCache(tmp_path / "results"),
                            ticker=False)
    out2 = second.run([spec])
    assert second.report.cache_hits == 1
    assert second.report.cache_hit_rate == 1.0
    digest = spec.content_hash()
    assert out2[digest] == out1[digest]  # metric-identical after round-trip


# ----------------------------------------------------------------------
# Pool mode: timeout and recovery
# ----------------------------------------------------------------------
def test_timeout_kills_hung_job():
    runner = ParallelRunner(jobs=2, timeout=0.3, retries=0, fn=_hang_job,
                            ticker=False)
    started = time.monotonic()
    with pytest.raises(ExecutionError):
        runner.run([make_job()])
    assert time.monotonic() - started < 30  # did not wait for the sleep
    record = runner.report.records[0]
    assert record.status == "timeout"
    assert "timeout" in record.error


def test_timeout_then_retry_recovers(tmp_path):
    flag = tmp_path / "attempted.flag"
    spec = make_job(workload=str(flag))
    runner = ParallelRunner(jobs=2, timeout=1.0, retries=1, fn=_hang_once_job,
                            ticker=False)
    out = runner.run([spec])
    assert out[spec.content_hash()] == "recovered"
    record = runner.report.records[0]
    assert record.status == "ok" and record.attempts == 2


def test_pool_mode_runs_real_jobs(quick_env):
    specs = [make_spec(design, "dfs", config=small_test_config(), num_cores=1,
                       max_accesses=400)
             for design in ("np", "morphctr")]
    runner = ParallelRunner(jobs=2, ticker=False)
    out = runner.run(specs)
    assert len(out) == 2
    assert runner.report.mode == "pool"
    assert all(record.status == "ok" for record in runner.report.records)


# ----------------------------------------------------------------------
# Determinism: parallel == serial, metric for metric
# ----------------------------------------------------------------------
def test_parallel_results_identical_to_serial(quick_env):
    designs, workloads = ["np", "morphctr"], ["dfs"]
    serial = bench_runner.run_design_matrix(designs, workloads, jobs=1,
                                            use_cache=False)
    bench_runner._RESULT_CACHE.clear()
    parallel = bench_runner.run_design_matrix(designs, workloads, jobs=2,
                                              use_cache=False)
    for workload in workloads:
        for design in designs:
            assert parallel[workload][design].to_dict() == \
                serial[workload][design].to_dict()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def test_manifest_written_and_machine_readable(tmp_path):
    import json

    runner = ParallelRunner(jobs=1, fn=_echo_job, ticker=False,
                            manifest_dir=tmp_path / "manifests")
    runner.run([make_job(), make_job(design="morphctr")])
    path = runner.report.manifest_path
    assert path is not None and path.exists()
    manifest = json.loads(path.read_text())
    assert manifest["totals"]["jobs"] == 2
    assert manifest["totals"]["failed"] == 0
    assert {job["design"] for job in manifest["jobs"]} == {"np", "morphctr"}
    assert 0.0 <= manifest["totals"]["worker_utilisation"] <= 1.0
