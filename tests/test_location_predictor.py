"""Unit tests for the RL-based data-location predictor (Algorithm 3)."""

import random

from repro.core.config import CosmosConfig, Hyperparameters
from repro.core.location_predictor import (
    OFF_CHIP,
    ON_CHIP,
    DataLocationPredictor,
)


def make_predictor(epsilon=0.0):
    hyper = Hyperparameters(epsilon_d=epsilon)
    return DataLocationPredictor(CosmosConfig(num_states=2048, hyper=hyper))


def test_predict_returns_action_and_state():
    predictor = make_predictor()
    action, state = predictor.predict(123)
    assert action in (ON_CHIP, OFF_CHIP)
    assert state == predictor.state_of(123)


def test_learns_stable_on_chip_mapping():
    predictor = make_predictor()
    for _ in range(200):
        action, state = predictor.predict(7)
        predictor.train(state, action, actually_on_chip=True)
    action, _ = predictor.predict(7)
    assert action == ON_CHIP


def test_learns_stable_off_chip_mapping():
    predictor = make_predictor()
    for _ in range(200):
        action, state = predictor.predict(9)
        predictor.train(state, action, actually_on_chip=False)
    action, _ = predictor.predict(9)
    assert action == OFF_CHIP


def test_mixed_state_follows_reward_weighted_majority():
    """The tuned rewards bias toward off-chip for mixed regions.

    Off-chip wins when p_off * (r_mo + |r_mi|) > p_on * (|r_ho| + r_hi)
    under the Table 1 values — i.e. for p_off above ~0.41.
    """
    predictor = make_predictor()
    rng = random.Random(0)
    for _ in range(4000):
        action, state = predictor.predict(11)
        predictor.train(state, action, actually_on_chip=rng.random() < 0.4)
    action, _ = predictor.predict(11)
    assert action == OFF_CHIP


def test_accuracy_high_on_separable_workload():
    predictor = make_predictor(epsilon=0.05)
    rng = random.Random(1)
    for _ in range(50_000):
        if rng.random() < 0.5:
            block, on_chip = rng.randrange(500), True
        else:
            block, on_chip = 10_000 + rng.randrange(500), False
        action, state = predictor.predict(block)
        predictor.train(state, action, on_chip)
    assert predictor.stats.accuracy > 0.8


def test_distribution_sums_to_one():
    predictor = make_predictor(epsilon=0.2)
    rng = random.Random(2)
    for _ in range(500):
        action, state = predictor.predict(rng.randrange(100))
        predictor.train(state, action, rng.random() < 0.5)
    distribution = predictor.stats.distribution()
    assert abs(sum(distribution.values()) - 1.0) < 1e-9


def test_empty_distribution_is_zero():
    predictor = make_predictor()
    assert sum(predictor.stats.distribution().values()) == 0.0
    assert predictor.stats.accuracy == 0.0


def test_off_chip_misprediction_rate():
    predictor = make_predictor()
    stats = predictor.stats
    stats.correct_off_chip = 88
    stats.wrong_off_chip = 12
    assert abs(stats.off_chip_misprediction_rate - 0.12) < 1e-9


def test_adapts_after_phase_change():
    predictor = make_predictor(epsilon=0.1)
    for _ in range(300):
        action, state = predictor.predict(5)
        predictor.train(state, action, actually_on_chip=True)
    # Phase change: the block's region becomes off-chip.
    for _ in range(3000):
        action, state = predictor.predict(5)
        predictor.train(state, action, actually_on_chip=False)
    action, _ = predictor.predict(5)
    assert action == OFF_CHIP
