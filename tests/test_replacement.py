"""Unit tests for the replacement policies."""

import pytest

from repro.mem.cache import Cache
from repro.mem.replacement import (
    CacheLine,
    LRUPolicy,
    MockingjayPolicy,
    RandomPolicy,
    RRIPPolicy,
    SHiPPolicy,
    make_policy,
)


def lines(n):
    return [CacheLine(tag) for tag in range(n)]


class TestLRU:
    def test_victim_is_oldest(self):
        policy = LRUPolicy()
        candidates = lines(3)
        for line in candidates:
            policy.on_insert(0, line)
        policy.on_hit(0, candidates[0])
        victim = policy.victim(0, candidates)
        assert victim is candidates[1]

    def test_hit_refreshes(self):
        policy = LRUPolicy()
        candidates = lines(2)
        for line in candidates:
            policy.on_insert(0, line)
        policy.on_hit(0, candidates[0])
        assert policy.victim(0, candidates) is candidates[1]


class TestRandom:
    def test_victim_from_candidates(self):
        policy = RandomPolicy(seed=1)
        candidates = lines(4)
        for _ in range(20):
            assert policy.victim(0, candidates) in candidates

    def test_deterministic_with_seed(self):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        candidates = lines(8)
        assert [a.victim(0, candidates).tag for _ in range(10)] == [
            b.victim(0, candidates).tag for _ in range(10)
        ]


class TestRRIP:
    def test_insert_rrpv(self):
        policy = RRIPPolicy()
        line = CacheLine(0)
        policy.on_insert(0, line)
        assert line.rrpv == 2

    def test_hit_promotes(self):
        policy = RRIPPolicy()
        line = CacheLine(0)
        policy.on_insert(0, line)
        policy.on_hit(0, line)
        assert line.rrpv == 0

    def test_victim_prefers_max_rrpv(self):
        policy = RRIPPolicy()
        candidates = lines(3)
        candidates[0].rrpv = 1
        candidates[1].rrpv = 3
        candidates[2].rrpv = 2
        assert policy.victim(0, candidates) is candidates[1]

    def test_aging_when_no_max(self):
        policy = RRIPPolicy()
        candidates = lines(2)
        candidates[0].rrpv = 0
        candidates[1].rrpv = 1
        victim = policy.victim(0, candidates)
        assert victim is candidates[1]
        assert candidates[0].rrpv > 0  # aged up

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            RRIPPolicy(max_rrpv=2, insert_rrpv=3)


class TestSHiP:
    def test_learns_reuse_signature(self):
        policy = SHiPPolicy(shct_entries=16, counter_max=3)
        line = CacheLine(0)
        policy.on_insert(0, line, context=0)
        signature = line.signature
        before = policy.shct_value(signature)
        policy.on_hit(0, line, context=0)
        assert policy.shct_value(signature) == min(3, before + 1)

    def test_dead_signature_inserted_distant(self):
        policy = SHiPPolicy(shct_entries=16, counter_max=3)
        # Train the signature to zero with unused insert/evict pairs.
        for _ in range(4):
            line = CacheLine(0)
            policy.on_insert(0, line, context=0)
            policy.on_evict(0, line)
        line = CacheLine(0)
        policy.on_insert(0, line, context=0)
        assert line.rrpv == policy.max_rrpv

    def test_eviction_without_reuse_decrements(self):
        policy = SHiPPolicy(shct_entries=16)
        line = CacheLine(0)
        policy.on_insert(0, line, context=1 << 10)
        value = policy.shct_value(line.signature)
        policy.on_evict(0, line)
        assert policy.shct_value(line.signature) == max(0, value - 1)


class TestMockingjay:
    def test_victim_is_highest_eta(self):
        policy = MockingjayPolicy()
        candidates = lines(3)
        candidates[0].eta = 5
        candidates[1].eta = 50
        candidates[2].eta = 20
        assert policy.victim(0, candidates) is candidates[1]

    def test_reuse_distance_learning_lowers_eta(self):
        policy = MockingjayPolicy(default_reuse=1000)
        hot = CacheLine(0)
        # Touch the same context repeatedly: learned reuse distance shrinks.
        for _ in range(20):
            policy.on_hit(0, hot, context=4096)
        cold = CacheLine(1)
        policy.on_insert(0, cold, context=999999 << 12)
        assert hot.eta - policy._clock < cold.eta - policy._clock


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "random", "rrip", "ship", "mockingjay"])
    def test_make_policy(self, name):
        assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("belady")


def test_policies_work_inside_cache():
    for name in ("lru", "rrip", "ship", "mockingjay", "random"):
        cache = Cache(4 * 64, 2, policy=make_policy(name))
        for block in range(32):
            cache.access_and_fill(block)
        assert cache.occupancy <= cache.capacity_lines
        assert cache.stats.misses == 32
