"""Unit tests for graph synthesis and the graph memory layout."""

import pytest

from repro.workloads.graph import (
    CsrGraph,
    GraphMemoryLayout,
    degree_skew,
    github_like_graph,
    preferential_attachment_graph,
)


class TestGraphGeneration:
    def test_symmetric_edges(self):
        graph = preferential_attachment_graph(200, edges_per_vertex=3, seed=1)
        for vertex in range(graph.num_vertices):
            for neighbor in graph.neighbors(vertex):
                assert vertex in graph.neighbors(neighbor)

    def test_heavy_tail(self):
        graph = preferential_attachment_graph(2000, edges_per_vertex=4, seed=2)
        # Top 1% of vertices should own a disproportionate share of edges.
        assert degree_skew(graph, 0.01) > 0.03

    def test_deterministic_with_seed(self):
        a = preferential_attachment_graph(300, seed=9)
        b = preferential_attachment_graph(300, seed=9)
        assert a.col_idx == b.col_idx

    def test_different_seeds_differ(self):
        a = preferential_attachment_graph(300, seed=1)
        b = preferential_attachment_graph(300, seed=2)
        assert a.col_idx != b.col_idx

    def test_label_shuffle_scatters_hubs(self):
        clustered = preferential_attachment_graph(2000, seed=4, shuffle_labels=False)
        shuffled = preferential_attachment_graph(2000, seed=4, shuffle_labels=True)
        # Without shuffling, hubs concentrate at low ids.
        low_degree_clustered = sum(clustered.degree(v) for v in range(100))
        low_degree_shuffled = sum(shuffled.degree(v) for v in range(100))
        assert low_degree_clustered > low_degree_shuffled

    def test_github_like_scale(self):
        graph = github_like_graph(scale=0.01, seed=1)
        assert graph.num_vertices >= 64
        full = github_like_graph(scale=0.02, seed=1)
        assert full.num_vertices > graph.num_vertices

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(1)
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, edges_per_vertex=0)


class TestCsrGraph:
    def test_degree_and_neighbors(self):
        graph = CsrGraph(row_ptr=[0, 2, 3, 3], col_idx=[1, 2, 0])
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert list(graph.neighbors(0)) == [1, 2]
        assert graph.degree(1) == 1
        assert graph.degree(2) == 0


class TestLayout:
    def graph(self):
        return preferential_attachment_graph(300, edges_per_vertex=3, seed=5)

    def test_property_arrays_distinct(self):
        layout = GraphMemoryLayout(self.graph())
        a = layout.property_array("visited")
        b = layout.property_array("rank")
        assert a != b
        assert layout.property_array("visited") == a  # cached

    def test_property_addresses_strided(self):
        layout = GraphMemoryLayout(self.graph(), property_bytes=64)
        assert (
            layout.property_address("visited", 1)
            - layout.property_address("visited", 0)
            == 64
        )

    def test_scattered_edges_break_sequentiality(self):
        graph = self.graph()
        scattered = GraphMemoryLayout(graph, scatter_edges=True, seed=7)
        sequential_pairs = sum(
            1
            for edge in range(graph.num_edges - 1)
            if abs(scattered.col_idx_address(edge + 1) - scattered.col_idx_address(edge))
            == scattered.edge_record_bytes
        )
        assert sequential_pairs < graph.num_edges * 0.05

    def test_compact_edges_are_sequential(self):
        layout = GraphMemoryLayout(self.graph(), scatter_edges=False)
        assert layout.col_idx_address(1) - layout.col_idx_address(0) == layout.index_bytes

    def test_scatter_is_a_permutation(self):
        graph = self.graph()
        layout = GraphMemoryLayout(graph, scatter_edges=True)
        addresses = {layout.col_idx_address(edge) for edge in range(graph.num_edges)}
        assert len(addresses) == graph.num_edges

    def test_row_ptr_addresses(self):
        layout = GraphMemoryLayout(self.graph())
        assert layout.row_ptr_address(1) - layout.row_ptr_address(0) == layout.offset_bytes

    def test_footprint_grows_with_properties(self):
        layout = GraphMemoryLayout(self.graph())
        before = layout.footprint_bytes
        layout.property_array("new_prop")
        assert layout.footprint_bytes > before


def test_degree_skew_validates_fraction():
    graph = preferential_attachment_graph(100, seed=1)
    with pytest.raises(ValueError):
        degree_skew(graph, 0.0)
