"""Unit tests for the set-associative cache model."""

import pytest

from repro.mem.cache import Cache
from repro.mem.replacement import LRUPolicy


def make_cache(size=4096, assoc=4, **kwargs):
    return Cache(size, assoc, **kwargs)


def test_geometry():
    cache = make_cache(size=4096, assoc=4)
    assert cache.num_sets == 4096 // (4 * 64)
    assert cache.capacity_lines == 64


def test_rejects_non_power_of_two_sets():
    with pytest.raises(ValueError):
        Cache(3 * 64 * 2, 2)


def test_rejects_indivisible_size():
    with pytest.raises(ValueError):
        Cache(1000, 3)


def test_miss_then_hit():
    cache = make_cache()
    assert not cache.access(1)
    cache.fill(1)
    assert cache.access(1)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_access_and_fill_combines():
    cache = make_cache()
    assert not cache.access_and_fill(7)
    assert cache.access_and_fill(7)


def test_fill_is_idempotent():
    cache = make_cache()
    cache.fill(5)
    assert cache.fill(5) is None
    assert cache.occupancy == 1


def test_eviction_on_full_set():
    cache = make_cache(size=2 * 64 * 4, assoc=2)  # 4 sets, 2 ways
    sets = cache.num_sets
    blocks = [i * sets for i in range(3)]  # all map to set 0
    for block in blocks:
        cache.fill(block)
    assert cache.occupancy == 2
    assert cache.stats.evictions == 1


def test_lru_evicts_least_recent():
    cache = Cache(2 * 64, 2, policy=LRUPolicy())  # 1 set, 2 ways
    cache.fill(0)
    cache.fill(1)
    cache.access(0)  # 0 is now most recent
    evicted = cache.fill(2)
    assert evicted == 1


def test_dirty_eviction_triggers_writeback_sink():
    written = []
    cache = Cache(2 * 64, 2, writeback_sink=written.append)
    cache.fill(0, dirty=True)
    cache.fill(1)
    cache.fill(2)  # evicts 0 (dirty)
    assert written == [0]
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    written = []
    cache = Cache(2 * 64, 2, writeback_sink=written.append)
    cache.fill(0)
    cache.fill(1)
    cache.fill(2)
    assert written == []


def test_write_access_marks_dirty():
    written = []
    cache = Cache(2 * 64, 2, writeback_sink=written.append)
    cache.fill(0)
    cache.access(0, is_write=True)
    cache.fill(1)
    cache.fill(2)
    assert written == [0]


def test_lookup_has_no_side_effects():
    cache = make_cache()
    cache.fill(9)
    hits, misses = cache.stats.hits, cache.stats.misses
    assert cache.lookup(9)
    assert not cache.lookup(10)
    assert cache.stats.hits == hits
    assert cache.stats.misses == misses


def test_invalidate():
    cache = make_cache()
    cache.fill(3)
    assert cache.invalidate(3)
    assert not cache.lookup(3)
    assert not cache.invalidate(3)


def test_invalidate_notifies_policy():
    """Regression: invalidation must reach ``policy.on_evict`` so learning
    policies (SHiP outcomes, LCR tags) do not leak state for dropped lines."""

    class RecordingPolicy(LRUPolicy):
        def __init__(self):
            super().__init__()
            self.evicted = []

        def on_evict(self, set_index, line):
            self.evicted.append(line.tag)

    policy = RecordingPolicy()
    cache = Cache(2 * 64, 2, policy=policy)
    cache.fill(5)
    assert cache.invalidate(5)
    assert policy.evicted == [5]
    assert not cache.invalidate(5)
    assert policy.evicted == [5]  # a miss must not notify


def test_flush_evicts_everything_and_writes_back_dirty():
    written = []
    cache = Cache(4 * 64, 2, writeback_sink=written.append)
    cache.fill(0, dirty=True)
    cache.fill(1)
    flushed = cache.flush()
    assert flushed == 2
    assert cache.occupancy == 0
    assert written == [0]


def test_resident_blocks_reports_contents():
    cache = make_cache()
    for block in (1, 2, 3):
        cache.fill(block)
    assert sorted(cache.resident_blocks()) == [1, 2, 3]


def test_prefetch_accounting():
    cache = make_cache()
    cache.fill(11, prefetched=True)
    cache.stats.prefetch_issued += 1
    assert cache.access(11)  # first demand hit on a prefetched line
    assert cache.stats.prefetch_useful == 1
    # A second hit must not double count.
    cache.access(11)
    assert cache.stats.prefetch_useful == 1


def test_unused_prefetch_counted_on_eviction():
    cache = Cache(2 * 64, 2)
    cache.stats.prefetch_issued += 2
    cache.fill(0, prefetched=True)
    cache.fill(1, prefetched=True)
    cache.access(1)
    cache.fill(2)  # evicts LRU line 0, never referenced
    assert cache.stats.prefetch_evicted_unused == 1
    assert cache.stats.prefetch_accuracy == 0.5


def test_set_index_distributes_blocks():
    cache = make_cache(size=64 * 64, assoc=4)
    indices = {cache.set_index(block) for block in range(cache.num_sets)}
    assert len(indices) == cache.num_sets
