"""Unit tests for the Next-Line, Stride and Berti prefetchers."""

import pytest

from repro.mem.prefetchers import (
    BertiPrefetcher,
    NextLinePrefetcher,
    NoPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)


class TestNextLine:
    def test_prefetches_next_block(self):
        assert NextLinePrefetcher().observe(100) == [101]

    def test_degree(self):
        assert NextLinePrefetcher(degree=3).observe(10) == [11, 12, 13]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_learns_constant_stride(self):
        prefetcher = StridePrefetcher(degree=1)
        prefetcher.observe(0)
        prefetcher.observe(4)   # stride 4, transient -> steady
        out = prefetcher.observe(8)
        assert out == [] or out == [12]
        out = prefetcher.observe(12)
        assert out == [16]

    def test_no_prefetch_on_random(self):
        prefetcher = StridePrefetcher()
        issued = []
        for block in (0, 17, 3, 99, 5, 61):
            issued.extend(prefetcher.observe(block))
        assert issued == []

    def test_zero_stride_ignored(self):
        prefetcher = StridePrefetcher()
        prefetcher.observe(5)
        assert prefetcher.observe(5) == []


class TestBerti:
    def test_learns_local_delta(self):
        prefetcher = BertiPrefetcher(confidence_threshold=0.3)
        base = 1 << 10
        issued = []
        for step in range(12):
            issued.extend(prefetcher.observe(base + 2 * step))
        assert base + 2 * 12 in issued or issued  # learned delta 2 eventually fires
        assert any(address % 2 == 0 for address in issued)

    def test_no_delta_without_confidence(self):
        prefetcher = BertiPrefetcher(confidence_threshold=0.9)
        issued = []
        import random

        rng = random.Random(1)
        page = 1 << 10
        for _ in range(30):
            issued.extend(prefetcher.observe(page + rng.randrange(64)))
        # Random deltas cannot reach 90% confidence.
        assert issued == []

    def test_page_table_capacity(self):
        prefetcher = BertiPrefetcher(max_pages=2)
        for page in range(5):
            prefetcher.observe(page << 6)
        assert len(prefetcher._history) <= 2


class TestFactory:
    @pytest.mark.parametrize("name", ["none", "next_line", "stride", "berti"])
    def test_make(self, name):
        assert make_prefetcher(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_prefetcher("ghost")

    def test_none_never_prefetches(self):
        prefetcher = NoPrefetcher()
        assert prefetcher.observe(123) == []
