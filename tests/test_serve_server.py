"""End-to-end tests for the experiment service.

Most tests run the real asyncio server on a background thread with the
``thread`` executor and stub job functions (closures are fine without
pickling), talking to it over real TCP sockets.  One test drives real
simulations through the full stack and checks the served results are
identical to a local :class:`ParallelRunner`; one exercises the process
pool's crash recovery.
"""

import json
import os
import socket
import threading
import time

import pytest

from repro.bench import runner as bench_runner
from repro.exec import JobSpec, ParallelRunner, ResultCache, make_spec, set_options
from repro.serve import (
    MAX_FRAME_BYTES,
    ExperimentServer,
    JobsFailed,
    ServeClient,
    ServeUnavailable,
    ServerThread,
    encode_frame,
)
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate


def make_job(**overrides):
    base = dict(design="np", workload="dfs", config=small_test_config(),
                num_cores=1, trace_length=400, graph_scale=0.02)
    base.update(overrides)
    return JobSpec(**base)


@pytest.fixture(scope="module")
def tiny_result(dfs_trace):
    """One real SimulationResult reused as the stub jobs' payload."""
    return simulate("np", dfs_trace, small_test_config(num_cores=1),
                    workload="dfs")


@pytest.fixture
def quick_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "2000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.02")
    monkeypatch.setattr(bench_runner, "CACHE_DIR", tmp_path / "traces")
    bench_runner._MEMORY_CACHE.clear()
    bench_runner._RESULT_CACHE.clear()
    yield
    bench_runner._MEMORY_CACHE.clear()
    bench_runner._RESULT_CACHE.clear()


def _crash_job(spec):  # must be top-level: the process pool pickles it
    os._exit(13)


def counter_value(stats, name):
    return int(stats["counters"].get(name, 0))


# ----------------------------------------------------------------------
# Real simulations through the full stack
# ----------------------------------------------------------------------
def test_served_results_identical_to_local_runner(quick_env, tmp_path):
    specs = [make_spec(design, "dfs", config=small_test_config(), num_cores=1,
                       max_accesses=400)
             for design in ("np", "morphctr")]
    local = ParallelRunner(jobs=1, cache=None, ticker=False).run(specs)

    server = ExperimentServer(cache=ResultCache(tmp_path / "results"),
                              jobs=2, executor="thread")
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=120) as client:
            results, manifest = client.submit(specs)
        assert manifest["totals"]["failed"] == 0
        assert manifest["mode"] == "serve"
        for spec in specs:
            digest = spec.content_hash()
            assert results[digest].to_dict() == local[digest].to_dict()

        # Warm rerun from a second client: 100% cache hits, no execution.
        with ServeClient(port=server.port, timeout=120) as client:
            rerun, manifest2 = client.submit(specs)
            stats = client.stats()
        assert manifest2["totals"]["cache_hit_rate"] == 1.0
        assert counter_value(stats, "serve.jobs_executed") == len(specs)
        for spec in specs:
            digest = spec.content_hash()
            assert rerun[digest].to_dict() == local[digest].to_dict()


def test_run_design_matrix_routes_through_service(quick_env, tmp_path):
    config = small_test_config()
    local = bench_runner.run_design_matrix(
        ["np"], ["dfs"], config=config, num_cores=1, max_accesses=400,
        use_cache=False)

    server = ExperimentServer(cache=ResultCache(tmp_path / "results"),
                              jobs=1, executor="thread")
    with ServerThread(server):
        set_options(serve=f"127.0.0.1:{server.port}")
        served = bench_runner.run_design_matrix(
            ["np"], ["dfs"], config=config, num_cores=1, max_accesses=400)
        stats_client = ServeClient(port=server.port)
        with stats_client:
            stats = stats_client.stats()
    assert served["dfs"]["np"].to_dict() == local["dfs"]["np"].to_dict()
    assert counter_value(stats, "serve.jobs_executed") == 1


# ----------------------------------------------------------------------
# Dedupe
# ----------------------------------------------------------------------
def test_duplicates_within_one_submit_execute_once(tiny_result, tmp_path):
    calls = []
    lock = threading.Lock()

    def fn(spec):
        with lock:
            calls.append(spec.seed)
        return tiny_result

    server = ExperimentServer(cache=ResultCache(tmp_path / "results"),
                              jobs=2, executor="thread", fn=fn)
    specs = [make_job(seed=1), make_job(seed=2), make_job(seed=1)]
    with ServerThread(server):
        with ServeClient(port=server.port) as client:
            results, manifest = client.submit(specs)
            ordered = [results[s.content_hash()] for s in specs]
    assert sorted(calls) == [1, 2]
    assert manifest["totals"]["duplicates"] == 1
    assert len(results) == 2 and len(ordered) == 3


def test_inflight_dedupe_across_clients(tiny_result, tmp_path):
    gate = threading.Event()
    entered = threading.Event()

    def fn(spec):
        entered.set()
        assert gate.wait(timeout=30)
        return tiny_result

    server = ExperimentServer(cache=ResultCache(tmp_path / "results"),
                              jobs=1, executor="thread", fn=fn)
    spec = make_job()
    outcomes = {}

    def submit(label):
        with ServeClient(port=server.port, timeout=60) as client:
            results, _ = client.submit([spec])
            outcomes[label] = results[spec.content_hash()]

    with ServerThread(server):
        first = threading.Thread(target=submit, args=("a",))
        first.start()
        assert entered.wait(timeout=10)  # the job is now in flight
        second = threading.Thread(target=submit, args=("b",))
        second.start()
        time.sleep(0.2)  # let the second submit join the in-flight entry
        gate.set()
        first.join(timeout=30)
        second.join(timeout=30)
        with ServeClient(port=server.port) as client:
            stats = client.stats()
    assert outcomes["a"].to_dict() == outcomes["b"].to_dict()
    assert counter_value(stats, "serve.jobs_executed") == 1
    assert counter_value(stats, "serve.dedup_joined") >= 1


# ----------------------------------------------------------------------
# Cache fast path
# ----------------------------------------------------------------------
def test_cache_hits_never_touch_a_worker(tiny_result, tmp_path):
    spec = make_job()
    cache = ResultCache(tmp_path / "results")
    assert cache.put(spec, tiny_result)

    def fn(_spec):  # would fail the test if the server executed anything
        raise AssertionError("cache hit must not reach a worker")

    server = ExperimentServer(cache=cache, jobs=1, executor="thread", fn=fn)
    with ServerThread(server):
        with ServeClient(port=server.port) as client:
            results, manifest = client.submit([spec])
            stats = client.stats()
    assert results[spec.content_hash()].to_dict() == tiny_result.to_dict()
    assert manifest["totals"]["cache_hit_rate"] == 1.0
    assert counter_value(stats, "serve.jobs_executed") == 0
    assert counter_value(stats, "serve.cache_hits") == 1


# ----------------------------------------------------------------------
# Back-pressure
# ----------------------------------------------------------------------
def test_oversubscribed_burst_is_shed_and_recovers(tiny_result, tmp_path):
    gate = threading.Event()
    entered = threading.Event()

    def fn(spec):
        if spec.workload != "warm":
            entered.set()
            assert gate.wait(timeout=30)
        return tiny_result

    server = ExperimentServer(cache=None, jobs=1, executor="thread", fn=fn,
                              queue_limit=2)

    def submit(seeds):
        with ServeClient(port=server.port, timeout=60) as client:
            client.submit([make_job(seed=s) for s in seeds])

    with ServerThread(server):
        with ServeClient(port=server.port, timeout=60) as warm:
            # One fast job first, so retry_after estimates use a real mean.
            warm.submit([make_job(workload="warm")])
        first = threading.Thread(target=submit, args=([1],))
        first.start()
        assert entered.wait(timeout=10)  # seed 1 occupies the only worker
        second = threading.Thread(target=submit, args=([2, 3],))
        second.start()
        time.sleep(0.3)  # seeds 2 and 3 queue up: the queue is now full
        with ServeClient(port=server.port) as probe:
            stats_full = probe.stats()
            with pytest.raises(ServeUnavailable, match="queue full"):
                ServeClient(port=server.port, timeout=60,
                            attempts=2).submit([make_job(seed=9)])
            stats_after = probe.stats()
            threading.Timer(0.4, gate.set).start()
            late = ServeClient(port=server.port, timeout=60, attempts=50)
            with late:
                results, _ = late.submit([make_job(seed=9)])
        first.join(timeout=30)
        second.join(timeout=30)
    assert stats_full["queue_depth"] == 2  # bounded under the burst
    assert counter_value(stats_after, "serve.submits_rejected") >= 2
    assert make_job(seed=9).content_hash() in results


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
def test_worker_exception_reports_failure(tmp_path):
    def fn(spec):
        raise RuntimeError("synthetic failure")

    server = ExperimentServer(cache=None, jobs=1, executor="thread", fn=fn,
                              retries=1)
    with ServerThread(server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(JobsFailed, match="synthetic failure") as info:
                client.submit([make_job()])
            stats = client.stats()
    assert len(info.value.failures) == 1
    assert counter_value(stats, "serve.jobs_failed") == 1


def test_timeout_fails_job_and_server_stays_up(tiny_result, tmp_path):
    def fn(spec):
        if spec.seed == 1:
            time.sleep(3)
        return tiny_result

    server = ExperimentServer(cache=None, jobs=1, executor="thread", fn=fn,
                              timeout=0.2, retries=0)
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=30) as client:
            with pytest.raises(JobsFailed, match="timeout"):
                client.submit([make_job(seed=1)])
            # The wedged worker was reclaimed: new jobs still execute.
            results, _ = client.submit([make_job(seed=2)])
            stats = client.stats()
    assert make_job(seed=2).content_hash() in results
    assert counter_value(stats, "serve.jobs_timeout") == 1


def test_worker_crash_fails_job_but_cache_still_serves(tiny_result, tmp_path):
    spec_ok = make_job(seed=2)
    cache = ResultCache(tmp_path / "results")
    assert cache.put(spec_ok, tiny_result)

    server = ExperimentServer(cache=cache, jobs=1, executor="process",
                              fn=_crash_job, retries=0, timeout=30)
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=60) as client:
            with pytest.raises(JobsFailed, match="crashed"):
                client.submit([make_job(seed=1)])
            results, manifest = client.submit([spec_ok])
            stats = client.stats()
    assert results[spec_ok.content_hash()].to_dict() == tiny_result.to_dict()
    assert manifest["totals"]["cache_hit_rate"] == 1.0
    assert counter_value(stats, "serve.workers_crashed") >= 1


# ----------------------------------------------------------------------
# Client reconnect
# ----------------------------------------------------------------------
def test_client_reconnect_resumes_from_cache(tiny_result, tmp_path):
    executed = []
    lock = threading.Lock()

    def fn(spec):
        with lock:
            executed.append(spec.seed)
        return tiny_result

    cache = ResultCache(tmp_path / "results")
    server = ExperimentServer(cache=cache, jobs=2, executor="thread", fn=fn)
    specs = [make_job(seed=s) for s in (1, 2, 3)]
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=30) as client:
            client.submit(specs[:2])  # 1 and 2 are now cached

        client = ServeClient(port=server.port, timeout=30)
        original_stream = client._stream
        drops = {"n": 0}

        def flaky_stream(results, failures, callback, request_id):
            if drops["n"] == 0:
                # Simulate a mid-stream connection loss after the submit
                # frame went out: the server keeps executing.
                drops["n"] += 1
                client.close()
                raise ConnectionError("simulated drop")
            return original_stream(results, failures, callback, request_id)

        client._stream = flaky_stream
        with client:
            results, manifest = client.submit(specs)
            stats = client.stats()
    assert drops["n"] == 1  # the drop really happened
    assert {s.content_hash() for s in specs} == set(results)
    # Exactly-once execution across the drop: each unique cell ran once.
    assert sorted(executed) == [1, 2, 3]
    assert counter_value(stats, "serve.jobs_executed") == 3
    assert manifest["totals"]["cache_hits"] >= 2  # resumed from cache


# ----------------------------------------------------------------------
# Protocol robustness over real sockets
# ----------------------------------------------------------------------
def _raw_connection(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    reader = sock.makefile("rb")
    hello = json.loads(reader.readline())
    assert hello["type"] == "hello"
    return sock, reader


def test_garbage_frame_gets_error_then_disconnect(tiny_result):
    server = ExperimentServer(cache=None, executor="thread",
                              fn=lambda spec: tiny_result)
    with ServerThread(server):
        sock, reader = _raw_connection(server.port)
        sock.sendall(b"this is not json\n")
        reply = json.loads(reader.readline())
        assert reply["type"] == "error" and "JSON" in reply["error"]
        assert reader.readline() == b""  # server dropped the connection
        sock.close()


def test_oversized_frame_rejected_server_side(tiny_result):
    server = ExperimentServer(cache=None, executor="thread",
                              fn=lambda spec: tiny_result)
    with ServerThread(server):
        sock, reader = _raw_connection(server.port)
        sock.sendall(b"x" * (MAX_FRAME_BYTES + 3))  # no newline anywhere
        reply = json.loads(reader.readline())
        assert reply["type"] == "error" and "exceeds" in reply["error"]
        sock.close()


def test_unknown_frame_type_keeps_connection(tiny_result):
    server = ExperimentServer(cache=None, executor="thread",
                              fn=lambda spec: tiny_result)
    with ServerThread(server):
        sock, reader = _raw_connection(server.port)
        sock.sendall(encode_frame({"type": "bogus"}))
        reply = json.loads(reader.readline())
        assert reply["type"] == "error" and "bogus" in reply["error"]
        sock.sendall(encode_frame({"v": 1, "type": "ping"}))
        assert json.loads(reader.readline())["type"] == "pong"
        sock.close()


def test_stats_shape(tiny_result):
    server = ExperimentServer(cache=None, executor="thread",
                              fn=lambda spec: tiny_result)
    with ServerThread(server):
        with ServeClient(port=server.port) as client:
            assert client.ping()
            client.submit([make_job()])
            stats = client.stats()
    assert stats["workers"] >= 1
    assert stats["queue_depth"] == 0 and stats["inflight"] == 0
    assert 0.0 <= stats["cache_hit_ratio"] <= 1.0
    hist = stats["job_wall_time_s"]
    assert hist["total"] == 1 and hist["p50"] >= 0.0
    assert stats["counters"]["serve.jobs_executed"] == 1
