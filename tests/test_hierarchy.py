"""Unit tests for the multi-core cache hierarchy."""

import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.mem.hierarchy import HierarchyConfig, LevelConfig, MemoryHierarchy


def small_hierarchy(cores=1, sink=None):
    config = HierarchyConfig(
        num_cores=cores,
        l1=LevelConfig(2 * 1024, 2, 2),
        l2=LevelConfig(8 * 1024, 4, 20),
        llc=LevelConfig(32 * 1024, 8, 128),
    )
    return MemoryHierarchy(config, memory_write_sink=sink)


def test_default_config_matches_table3():
    config = HierarchyConfig()
    assert config.num_cores == 4
    assert config.l1.size_bytes == 32 * 1024 and config.l1.assoc == 2 and config.l1.latency == 2
    assert config.l2.size_bytes == 1024 * 1024 and config.l2.assoc == 8 and config.l2.latency == 20
    assert config.llc.size_bytes == 8 * 1024 * 1024 and config.llc.assoc == 16
    assert config.llc.latency == 128


def test_cold_access_goes_to_memory():
    hierarchy = small_hierarchy()
    result = hierarchy.access(MemoryAccess(0))
    assert result.hit_level == "MEM"
    assert result.needs_memory
    assert result.l1_miss
    assert result.lookup_latency == 2 + 20 + 128


def test_second_access_hits_l1():
    hierarchy = small_hierarchy()
    hierarchy.access(MemoryAccess(0))
    result = hierarchy.access(MemoryAccess(0))
    assert result.hit_level == "L1"
    assert result.lookup_latency == 2
    assert not result.l1_miss


def test_l1_capacity_spill_hits_l2():
    hierarchy = small_hierarchy()
    l1_lines = hierarchy.l1[0].capacity_lines
    for block in range(l1_lines * 2):
        hierarchy.access(MemoryAccess(block * 64))
    result = hierarchy.access(MemoryAccess(0))
    assert result.hit_level in ("L2", "L1")  # evicted from L1 but still in L2
    if result.hit_level == "L2":
        assert result.lookup_latency == 22


def test_llc_shared_across_cores():
    hierarchy = small_hierarchy(cores=2)
    hierarchy.access(MemoryAccess(0, core=0))
    result = hierarchy.access(MemoryAccess(0, core=1))
    # Core 1's private caches miss, but the shared LLC hits.
    assert result.hit_level == "LLC"


def test_core_out_of_range_rejected():
    hierarchy = small_hierarchy(cores=1)
    with pytest.raises(ValueError):
        hierarchy.access(MemoryAccess(0, core=5))


def test_probe_on_chip_matches_state():
    hierarchy = small_hierarchy()
    assert not hierarchy.probe_on_chip(0, core=0)
    hierarchy.access(MemoryAccess(0))
    assert hierarchy.probe_on_chip(0, core=0)


def test_dirty_llc_eviction_reaches_sink():
    written = []
    hierarchy = small_hierarchy(sink=written.append)
    llc_lines = hierarchy.llc.capacity_lines
    hierarchy.access(MemoryAccess(0, AccessType.WRITE))
    # Fill well past every level so block 0 is evicted from all of them.
    for block in range(1, llc_lines * 3):
        hierarchy.access(MemoryAccess(block * 64))
    assert 0 in written


def test_flush_writes_back_dirty_lines():
    written = []
    hierarchy = small_hierarchy(sink=written.append)
    hierarchy.access(MemoryAccess(0, AccessType.WRITE))
    hierarchy.flush()
    assert written.count(0) >= 1


def test_miss_rates_aggregate():
    hierarchy = small_hierarchy(cores=2)
    for core in range(2):
        for block in range(10):
            hierarchy.access(MemoryAccess(block * 64, core=core))
    assert 0.0 < hierarchy.l1_miss_rate() <= 1.0
    assert hierarchy.llc_miss_rate() <= 1.0


def test_scaled_llc_for_cores():
    config = HierarchyConfig(num_cores=8)
    scaled = config.scaled_llc_for_cores()
    assert scaled.llc.size_bytes == 16 * 1024 * 1024  # paper Fig. 15: 8 cores, 16MB
    assert scaled.num_cores == 8


def test_zero_cores_rejected():
    with pytest.raises(ValueError):
        MemoryHierarchy(HierarchyConfig(num_cores=0))
