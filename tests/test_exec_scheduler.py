"""Tests for the shared scheduling primitives and worker auto-detection."""

import threading

import pytest

from repro.exec import InflightTable, JobSpec, auto_jobs, dedupe_specs
from repro.exec.options import DEFAULT_JOBS_CAP
from repro.sim.config import small_test_config


def make_job(**overrides):
    base = dict(design="np", workload="dfs", config=small_test_config(),
                num_cores=1, trace_length=400, graph_scale=0.02)
    base.update(overrides)
    return JobSpec(**base)


# ----------------------------------------------------------------------
# dedupe_specs
# ----------------------------------------------------------------------
def test_dedupe_preserves_order_and_collapses():
    a, b = make_job(), make_job(design="cosmos")
    pairs = dedupe_specs([a, b, make_job(), a])
    assert [spec.design for _, spec in pairs] == ["np", "cosmos"]
    assert pairs[0][0] == a.content_hash()


def test_dedupe_empty():
    assert dedupe_specs([]) == []


# ----------------------------------------------------------------------
# InflightTable
# ----------------------------------------------------------------------
def test_claim_leader_then_followers():
    table = InflightTable()
    spec = make_job()
    led, job = table.claim("h1", spec)
    assert led and job.followers == 0 and not job.done
    led2, job2 = table.claim("h1", spec)
    assert not led2 and job2 is job and job.followers == 1
    assert table.led == 1 and table.joined == 1
    assert len(table) == 1


def test_resolve_wakes_followers_and_clears_entry():
    table = InflightTable()
    _, job = table.claim("h1", make_job())
    seen = []

    def follower():
        assert job.wait(timeout=5)
        seen.append(job.result)

    thread = threading.Thread(target=follower)
    thread.start()
    table.resolve("h1", "the-result")
    thread.join(timeout=5)
    assert seen == ["the-result"]
    assert job.done and job.error is None
    assert table.get("h1") is None  # next claim starts fresh
    assert len(table) == 0


def test_fail_propagates_error():
    table = InflightTable()
    _, job = table.claim("h1", make_job())
    error = RuntimeError("boom")
    table.fail("h1", error)
    assert job.done and job.error is error and job.result is None


def test_finish_unknown_hash_raises():
    table = InflightTable()
    with pytest.raises(KeyError):
        table.resolve("nope", 1)


def test_claim_after_resolve_is_a_fresh_lead():
    table = InflightTable()
    table.claim("h1", make_job())
    table.resolve("h1", "r1")
    led, job = table.claim("h1", make_job())
    assert led and not job.done
    assert table.led == 2


def test_concurrent_claims_elect_exactly_one_leader():
    table = InflightTable()
    spec = make_job()
    outcomes = []
    barrier = threading.Barrier(8)

    def contender():
        barrier.wait()
        led, _ = table.claim("h", spec)
        outcomes.append(led)

    threads = [threading.Thread(target=contender) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5)
    assert sum(outcomes) == 1 and len(outcomes) == 8


# ----------------------------------------------------------------------
# auto_jobs
# ----------------------------------------------------------------------
def test_auto_jobs_is_positive_and_capped():
    jobs = auto_jobs()
    assert 1 <= jobs <= DEFAULT_JOBS_CAP


def test_auto_jobs_explicit_cap():
    assert auto_jobs(cap=1) == 1
    assert auto_jobs(cap=0) == 1  # degenerate caps clamp to one worker


def test_auto_jobs_env_cap(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS_CAP", "1")
    assert auto_jobs() == 1
