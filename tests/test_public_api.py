"""Public-API surface tests: imports, __all__ hygiene, docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.mem",
    "repro.secure",
    "repro.core",
    "repro.sim",
    "repro.workloads",
    "repro.bench",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} is missing a module docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    """Every public class/function exported by the package has a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{package}: undocumented exports {undocumented}"


def test_top_level_quickstart_symbols():
    import repro

    for name in ("simulate", "generate_graph_trace", "SimulationConfig",
                 "MerkleTree", "CosmosController", "compute_overhead"):
        assert hasattr(repro, name)


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_every_module_has_docstring():
    import pathlib

    import repro

    root = pathlib.Path(repro.__file__).parent
    missing = []
    for path in root.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not (stripped.startswith('"""') or stripped.startswith("'''")
                or stripped.startswith('#!') or not stripped):
            missing.append(str(path.relative_to(root)))
    assert not missing, f"modules without docstrings: {missing}"


def test_public_methods_of_key_classes_documented():
    from repro.mem.cache import Cache
    from repro.secure.engine import SecureMemoryEngine
    from repro.sim.simulator import Simulator

    for cls in (Cache, SecureMemoryEngine, Simulator):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"
