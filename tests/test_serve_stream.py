"""Telemetry streaming over the experiment service (protocol v2).

Covers the three contracts of the stream layer: live ``window`` delivery
to subscribed clients over real TCP, bounded per-subscriber queues with
explicit drop/loss accounting under a slow reader, and strict backward
compatibility — a v1 client submitting to a v2 server gets byte-identical
result frames and never sees a v2-only frame.
"""

import json
import socket
import threading

import pytest

from repro import obs
from repro.exec import JobSpec, ResultCache
from repro.obs.stream import TelemetryHub
from repro.serve import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ExperimentServer,
    ServeClient,
    ServeError,
    ServerThread,
    encode_frame,
    subscribe_frame,
)
from repro.serve.server import _StreamSubscriber
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate


def make_job(**overrides):
    base = dict(design="np", workload="dfs", config=small_test_config(),
                num_cores=1, trace_length=400, graph_scale=0.02)
    base.update(overrides)
    return JobSpec(**base)


@pytest.fixture(scope="module")
def tiny_result(dfs_trace):
    return simulate("np", dfs_trace, small_test_config(num_cores=1),
                    workload="dfs")


# ----------------------------------------------------------------------
# Raw-socket helper (protocol-level tests)
# ----------------------------------------------------------------------
def _exchange(port, frames, stop_types, timeout=30, limit=500):
    """Send ``frames``, collect replies until a ``stop_types`` frame."""
    received = []
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        reader = sock.makefile("rb")
        hello = json.loads(reader.readline())
        for frame in frames:
            sock.sendall(encode_frame(frame))
        for _ in range(limit):
            line = reader.readline()
            if not line:
                break
            frame = json.loads(line)
            received.append(frame)
            if frame.get("type") in stop_types:
                break
    return hello, received


# ----------------------------------------------------------------------
# Live window delivery over TCP
# ----------------------------------------------------------------------
def test_subscriber_receives_metrics_samples_and_events(tiny_result, tmp_path):
    def fn(spec):
        hub = obs.active_hub()  # the server installed it at start()
        hub.publish_sample("np", "dfs", at=100, values={"rate": 1.0})
        hub.publish_event({"kind": "test_event", "at": 5, "detail": "x"})
        return tiny_result

    server = ExperimentServer(cache=ResultCache(tmp_path / "results"),
                              jobs=1, executor="thread", fn=fn)
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=30) as tailer:
            stream = tailer.tail(interval=0.1, max_windows=10)
            first = next(stream)  # subscribe ack + immediate first window
            with ServeClient(port=server.port, timeout=60) as submitter:
                submitter.submit([make_job()])
            windows = [first] + list(stream)
        assert server.run_id.startswith("serve-")

    assert len(windows) == 10
    assert [w["seq"] for w in windows] == list(range(1, 11))
    assert all(w["run_id"] == server.run_id for w in windows)
    assert all(w["v"] == PROTOCOL_VERSION for w in windows)
    # Metrics snapshots ride in every window; the submit showed up.
    assert windows[-1]["metrics"]["serve.jobs_submitted"] >= 1
    samples = [row for w in windows for row in w["samples"]]
    assert any(row["values"] == {"rate": 1.0} for row in samples)
    events = [e for w in windows for e in w["events"]]
    assert any(e["kind"] == "test_event" and e["detail"] == "x"
               for e in events)
    # Nothing dropped for a healthy reader.
    assert all(w["drops"]["windows_dropped"] == 0 for w in windows)
    assert all(w["drops"]["samples_lost"] == 0 for w in windows)


def test_two_concurrent_subscribers_both_stream(tiny_result, tmp_path):
    server = ExperimentServer(cache=None, jobs=1, executor="thread",
                              fn=lambda spec: tiny_result)
    collected = {}

    def tail(label):
        with ServeClient(port=server.port, timeout=30) as client:
            collected[label] = list(client.tail(interval=0.05, max_windows=3))

    with ServerThread(server):
        threads = [threading.Thread(target=tail, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        with ServeClient(port=server.port) as probe:
            stats = probe.stats()
    for label in range(2):
        assert [w["seq"] for w in collected[label]] == [1, 2, 3]
    assert stats["counters"]["serve.stream_subscribes"] == 2
    assert stats["counters"]["serve.stream_windows_sent"] >= 6


def test_unsubscribe_acks_with_drop_totals(tiny_result):
    server = ExperimentServer(cache=None, jobs=1, executor="thread",
                              fn=lambda spec: tiny_result)
    with ServerThread(server):
        _, frames = _exchange(server.port, [
            subscribe_frame("s1", interval=0.05),
            {"v": PROTOCOL_VERSION, "type": "unsubscribe", "id": "s1"},
        ], stop_types=("unsubscribed",))
    kinds = [f["type"] for f in frames]
    assert kinds[0] == "subscribed"
    assert frames[0]["id"] == "s1" and frames[0]["run_id"] == server.run_id
    assert "window" in kinds  # the immediate first window
    ack = frames[-1]
    assert ack["type"] == "unsubscribed"
    assert ack["drops"] == {"windows_dropped": 0, "samples_lost": 0,
                            "events_lost": 0}
    # Unsubscribing an unknown stream is an error, not a crash.
    with ServerThread(server2 := ExperimentServer(
            cache=None, jobs=1, executor="thread",
            fn=lambda spec: tiny_result)):
        _, frames = _exchange(server2.port, [
            {"v": PROTOCOL_VERSION, "type": "unsubscribe", "id": "ghost"},
        ], stop_types=("error",))
    assert "no active stream" in frames[-1]["error"]


def test_subscribe_requires_v2():
    server = ExperimentServer(cache=None, jobs=1, executor="thread",
                              fn=lambda spec: None)
    with ServerThread(server):
        _, frames = _exchange(server.port, [
            {"v": 1, "type": "subscribe", "id": "old"},
        ], stop_types=("error",))
    assert "protocol v2" in frames[-1]["error"]


# ----------------------------------------------------------------------
# Back-pressure: bounded queues, explicit drop accounting
# ----------------------------------------------------------------------
class _FakeOutbox:
    def __init__(self):
        self.frames = []
        self.backlog = 0  # simulated unsent frames of a slow reader

    def qsize(self):
        return self.backlog


class _FakeConn:
    name = "fake-conn"

    def __init__(self):
        self.outbox = _FakeOutbox()
        self.alive = True

    def send(self, frame):
        self.outbox.frames.append(frame)


def test_slow_subscriber_drops_windows_but_not_data():
    server = ExperimentServer(cache=None, jobs=1, executor="thread")
    server.hub = TelemetryHub(sample_capacity=64)
    conn = _FakeConn()
    sub = _StreamSubscriber(conn, "slow", interval=0.1, max_queue=2,
                            now=0.0, hub=server.hub)
    for at in range(3):
        server.hub.publish_sample("d", "w", at=at, values={})

    # Reader is at the bound: the window is dropped, cursors hold still.
    conn.outbox.backlog = 2
    server._send_window(sub, now=1.0)
    assert conn.outbox.frames == []
    assert sub.windows_dropped == 1 and sub.sample_cursor == 0
    assert server.registry.counter("serve.stream_windows_dropped").value == 1

    # Reader catches up: the next window delivers the *delayed* rows.
    conn.outbox.backlog = 0
    server._send_window(sub, now=2.0)
    window = conn.outbox.frames[-1]
    assert [row["at"] for row in window["samples"]] == [0, 1, 2]
    assert window["drops"]["windows_dropped"] == 1
    assert window["drops"]["samples_lost"] == 0


def test_ring_eviction_is_counted_as_lost():
    server = ExperimentServer(cache=None, jobs=1, executor="thread")
    server.hub = TelemetryHub(sample_capacity=2)
    conn = _FakeConn()
    sub = _StreamSubscriber(conn, "lossy", interval=0.1, max_queue=4,
                            now=0.0, hub=server.hub)
    # Fall 5 samples behind a 2-slot ring: 3 are gone forever.
    for at in range(5):
        server.hub.publish_sample("d", "w", at=at, values={})
    server._send_window(sub, now=1.0)
    window = conn.outbox.frames[-1]
    assert [row["at"] for row in window["samples"]] == [3, 4]
    assert window["drops"]["samples_lost"] == 3
    assert sub.sample_cursor == 5
    assert server.registry.counter("serve.stream_rows_lost").value == 3
    # The loss total is cumulative, not re-counted.
    server._send_window(sub, now=2.0)
    assert conn.outbox.frames[-1]["drops"]["samples_lost"] == 3


def test_dead_connection_is_pruned():
    server = ExperimentServer(cache=None, jobs=1, executor="thread")
    conn = _FakeConn()
    sub = _StreamSubscriber(conn, "dead", interval=0.1, max_queue=4,
                            now=0.0, hub=server.hub)
    server._stream_subs[(conn.name, "dead")] = sub
    conn.alive = False
    import asyncio

    async def one_tick():
        task = asyncio.ensure_future(server._stream_loop())
        await asyncio.sleep(0.05)
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    asyncio.run(one_tick())
    assert server._stream_subs == {}


# ----------------------------------------------------------------------
# v1 compatibility: byte-identical results, no unsolicited v2 frames
# ----------------------------------------------------------------------
V1_FRAME_TYPES = {"hello", "accepted", "job", "complete", "retry", "stats",
                  "pong", "error"}


def test_v1_client_gets_byte_identical_results(tiny_result, tmp_path):
    spec = make_job()
    cache = ResultCache(tmp_path / "results")
    assert cache.put(spec, tiny_result)  # warm: replies are deterministic
    server = ExperimentServer(cache=cache, jobs=1, executor="thread",
                              fn=lambda s: tiny_result)

    def submit_with_version(version):
        _, frames = _exchange(server.port, [
            {"v": version, "type": "submit", "id": "req",
             "specs": [spec.to_wire()]},
        ], stop_types=("complete", "error"))
        return frames

    with ServerThread(server):
        v1_frames = submit_with_version(1)
        v2_frames = submit_with_version(2)
        unsupported = submit_with_version(3)

    assert (1, 2) == SUPPORTED_VERSIONS
    # The v1 conversation only ever contains v1-era frame types.
    assert {f["type"] for f in v1_frames} <= V1_FRAME_TYPES
    # Byte-for-byte identical replies for v1 and v2 submits (modulo the
    # one genuinely nondeterministic field, the run's wall time).
    assert len(v1_frames) == len(v2_frames)
    for old, new in zip(v1_frames, v2_frames):
        for frame in (old, new):
            if frame["type"] == "complete":
                frame["manifest"]["totals"]["wall_time_s"] = 0.0
        assert encode_frame(old) == encode_frame(new)
    job_frames = [f for f in v1_frames if f["type"] == "job"]
    assert job_frames and job_frames[0]["event"] == "cached"
    assert job_frames[0]["result"] == tiny_result.to_dict()
    # A version the server does not speak is rejected, not guessed at.
    assert unsupported[-1]["type"] == "error"
    assert "version" in unsupported[-1]["error"]


def test_v1_client_coexists_with_v2_subscriber(tiny_result, tmp_path):
    spec = make_job()
    cache = ResultCache(tmp_path / "results")
    assert cache.put(spec, tiny_result)
    server = ExperimentServer(cache=cache, jobs=1, executor="thread",
                              fn=lambda s: tiny_result)
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=30) as tailer:
            stream = tailer.tail(interval=0.05, max_windows=6)
            next(stream)  # stream is live on the v2 connection
            _, v1_frames = _exchange(server.port, [
                {"v": 1, "type": "submit", "id": "legacy",
                 "specs": [spec.to_wire()]},
            ], stop_types=("complete", "error"))
            list(stream)
    # The concurrent stream leaked nothing into the v1 conversation.
    assert {f["type"] for f in v1_frames} <= V1_FRAME_TYPES
    assert v1_frames[-1]["type"] == "complete"


def test_served_manifest_carries_run_id(tiny_result, tmp_path):
    server = ExperimentServer(cache=None, jobs=1, executor="thread",
                              fn=lambda s: tiny_result)
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=30) as client:
            _, manifest = client.submit([make_job()])
            stats = client.stats()
    assert manifest["run_id"] == server.run_id
    assert stats["run_id"] == server.run_id
    assert stats["supported_versions"] == [1, 2]
    # Satellite: the stats reply embeds the full typed registry dump.
    assert stats["registry"]["serve.jobs_executed"]["type"] == "counter"
    assert stats["registry"]["serve.jobs_executed"]["value"] == 1
    assert "telemetry" in stats and "samples" in stats["telemetry"]


def test_tail_surfaces_server_refusal(tiny_result):
    # A server that errors the subscription makes tail raise, not hang.
    server = ExperimentServer(cache=None, jobs=1, executor="thread",
                              fn=lambda s: tiny_result)
    with ServerThread(server):
        with ServeClient(port=server.port, timeout=10) as client:
            client._send({"v": 1, "type": "subscribe", "id": "bad"})
            with pytest.raises(ServeError, match="protocol v2"):
                # Drain through the client's stream path.
                list(client.tail(interval=0.05, max_windows=1))
