"""RowHammer attack class: planner, boundary scenarios, registry, replay.

The disturbance model's contract (ISSUE 9): flips are earned from
activation pressure, every planned flip is detected by the expected
detector at the expected tree level, benign pressure stays below
threshold, and hammer specs round-trip through the same minimal-JSON
repro pipeline as the five classic tamper kinds.
"""

import json

import pytest

from repro.obs.events import EventRing
from repro.secure.counters import make_counter_scheme
from repro.secure.functional import FunctionalSecureMemory
from repro.verify.attack import AttackHarness
from repro.verify.fuzz import replay, shrink_case, write_repro
from repro.verify.hammer import (
    HammerConfig,
    PhysicalMap,
    boundary_hammer_ops,
    ops_from_trace,
    plan_hammer,
    run_hammer_attack,
    run_hammer_sweep,
)
from repro.verify.tamper import (
    ATTACK_CLASSES,
    ATTACK_KINDS,
    HAMMER_TARGETS,
    TAMPER_KINDS,
    Op,
    TamperSpec,
    affected_blocks,
    expected_detector,
    generate_ops,
    generate_schedule,
)


def _memory(scheme="monolithic", num_blocks=1 << 12):
    return FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme)
    )


# ----------------------------------------------------------------------
# Attack-class registry
# ----------------------------------------------------------------------
def test_registry_covers_six_classes():
    assert set(ATTACK_KINDS) == set(TAMPER_KINDS) | {"hammer"}
    assert len(ATTACK_KINDS) == 6
    for kind, klass in ATTACK_CLASSES.items():
        assert klass.kind == kind


@pytest.mark.parametrize("target,detector", [
    ("data", "mac"), ("ctr", "mt"), ("mt", "mt"),
])
def test_hammer_expected_detector_by_target(target, detector):
    spec = TamperSpec(kind="hammer", inject_at=0, block=0, bit=3, target=target)
    assert expected_detector(spec) == detector


def test_hammer_affected_blocks_by_target():
    memory = _memory()
    bpc = memory.scheme.blocks_per_ctr
    data = TamperSpec(kind="hammer", inject_at=0, block=9, bit=0, target="data")
    assert affected_blocks(data, memory) == {9}
    ctr = TamperSpec(kind="hammer", inject_at=0, block=9, bit=0, target="ctr")
    line = 9 // bpc
    assert affected_blocks(ctr, memory) == set(
        range(line * bpc, min((line + 1) * bpc, memory.num_blocks))
    )
    mt = TamperSpec(kind="hammer", inject_at=0, block=9, bit=0, level=0, target="mt")
    blast = affected_blocks(mt, memory)
    assert 9 in blast
    assert len(blast) > bpc  # parent subtree spans several counter lines


def test_hammer_spec_requires_known_target():
    spec = TamperSpec(kind="hammer", inject_at=0, block=0, bit=0, target="rowclone")
    with pytest.raises(ValueError):
        affected_blocks(spec, _memory())


def test_hammer_spec_json_round_trip():
    spec = TamperSpec(
        kind="hammer", inject_at=17, block=42, bit=129, level=1, target="mt"
    )
    clone = TamperSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone == spec
    assert clone.target == "mt"


def test_mixed_classic_and_hammer_schedule_is_clean():
    """The harness handles hammer flips alongside the five classic kinds."""
    import random

    memory = _memory(num_blocks=256)
    rng = random.Random("mixed-schedule")
    ops = generate_ops(rng, num_ops=80, num_blocks=256, footprint_blocks=64,
                       write_fraction=0.7)
    schedule = list(generate_schedule(rng, ops, _memory(num_blocks=256),
                                      max_events=3))
    victim = next(op.block for op in ops if op.is_write)
    schedule.append(TamperSpec(
        kind="hammer", inject_at=len(ops) // 2, block=victim, bit=5,
        target="data",
    ))
    report = AttackHarness(memory).run(ops, schedule)
    assert report.clean, report.failures()
    assert {d.kind for d in report.detections} >= {"hammer"}


# ----------------------------------------------------------------------
# Physical map
# ----------------------------------------------------------------------
def test_physical_map_partitions_space():
    memory = _memory()
    pmap = PhysicalMap(memory)
    assert pmap.classify(0) == ("data", 0)
    assert pmap.classify(pmap.ctr_base) == ("ctr", 0)
    assert pmap.classify(pmap.mt_base) == ("mt", 0, 0)
    assert pmap.classify(pmap.total) is None
    assert pmap.classify(-1) is None
    # Every address classifies back to the encoder that produced it.
    for line in (0, 1, pmap.num_lines - 1):
        assert pmap.classify(pmap.ctr_phys(line)) == ("ctr", line)
    for level, size in enumerate(pmap.level_sizes):
        assert pmap.classify(pmap.mt_phys(level, size - 1)) == ("mt", level, size - 1)
    # The on-chip root is not mapped: internal levels stop one short.
    assert len(pmap.level_sizes) == memory.tree.levels - 1


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
def test_plan_is_deterministic():
    memory = _memory()
    ops = boundary_hammer_ops(memory, region="data", seed=3)
    first = plan_hammer(ops, _memory(), seed=5)
    second = plan_hammer(ops, _memory(), seed=5)
    assert first.to_dict() == second.to_dict()
    assert first.flips  # the scenario must actually cross threshold


def test_plan_respects_flip_budget():
    memory = _memory()
    config = HammerConfig(max_flips=0)
    ops = boundary_hammer_ops(memory, config, region="data", seed=0)
    plan = plan_hammer(ops, memory, config)
    assert not plan.flips
    assert plan.skipped_budget >= 1


def test_plan_respects_target_filter():
    memory = _memory()
    config = HammerConfig(targets=("mt",))
    ops = boundary_hammer_ops(memory, config, region="data", seed=0)
    plan = plan_hammer(ops, memory, config)
    assert all(f.spec.target == "mt" for f in plan.flips)


def test_no_pressure_no_flips():
    """A stream that never alternates rows never activates twice."""
    memory = _memory()
    ops = [Op(block=0, is_write=True, payload=b"x")] + [
        Op(block=0, is_write=False) for _ in range(500)
    ]
    plan = plan_hammer(ops, memory, HammerConfig(include_metadata=False))
    assert plan.activations == 1
    assert plan.max_pressure <= 1  # the lone ACT pressures its neighbours once
    assert not plan.flips


def test_window_reset_caps_pressure():
    """Pressure cannot accumulate across refresh-window boundaries."""
    memory = _memory()
    base_ops = boundary_hammer_ops(
        memory, HammerConfig(threshold=10 ** 6), region="data", seed=0
    )
    wide = plan_hammer(base_ops, memory, HammerConfig(threshold=10 ** 6,
                                                      window_ops=10 ** 6))
    narrow = plan_hammer(base_ops, memory, HammerConfig(threshold=10 ** 6,
                                                        window_ops=16))
    assert narrow.max_pressure < wide.max_pressure
    assert narrow.windows > wide.windows


# ----------------------------------------------------------------------
# Boundary scenarios: every region, detected with correct attribution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("region,target,detector", [
    ("data", "data", "mac"),
    ("ctr", None, "mt"),   # a ctr-region row can also hold ctr/mt entities
    ("mt", "mt", "mt"),
])
@pytest.mark.parametrize("scheme", ["monolithic", "split"])
def test_boundary_scenario_detected(region, target, detector, scheme):
    memory = _memory(scheme)
    ops = boundary_hammer_ops(memory, region=region, seed=1)
    events = EventRing()
    plan, report = run_hammer_attack(ops, scheme=scheme, seed=1, events=events)
    assert plan.flips, f"no flips planned for region {region}"
    assert report.clean, report.failures()
    assert len(report.detections) == len(plan.flips)
    if target is not None:
        assert {f.spec.target for f in plan.flips} == {target}
    detected = events.filter("tamper_detected")
    assert len(detected) == len(plan.flips)
    for event in detected:
        assert event["tamper"] == "hammer"
        assert event["latency"] >= 0
        assert "level" in event
        if target == "mt":
            assert event["level"] is not None
    if target == "data":
        assert {d.detector for d in report.detections} == {"mac"}


def test_mt_boundary_attribution_level():
    """An MT-node flip is caught one level above the flipped node."""
    memory = _memory()
    ops = boundary_hammer_ops(memory, region="mt", seed=0)
    plan, report = run_hammer_attack(ops, seed=0)
    mt_flips = [f for f in plan.flips if f.spec.target == "mt"]
    assert mt_flips
    assert report.clean, report.failures()
    for detection in report.detections:
        spec = report.schedule[detection.spec_index]
        if spec.target == "mt":
            assert detection.level in (spec.level + 1, spec.level + 2)


def test_boundary_rejects_unknown_region():
    with pytest.raises(ValueError):
        boundary_hammer_ops(_memory(), region="mram")


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------
def test_sweep_is_clean_and_covers_targets():
    summary = run_hammer_sweep(seed=0, accesses=900)
    assert summary["clean"], summary["failures"]
    assert set(summary["by_target"]) == set(HAMMER_TARGETS)
    below = summary["scenarios"]["below-threshold"]
    assert below["planned"] == 0
    assert below["max_pressure"] < HammerConfig().threshold
    for name, detail in summary["scenarios"].items():
        assert detail["false_negatives"] == 0, name
        assert detail["false_positives"] == 0, name
        assert detail["misattributions"] == 0, name
        assert detail["injected"] == detail["detected"], name


def test_sweep_reproducible():
    first = run_hammer_sweep(seed=2, accesses=600)
    second = run_hammer_sweep(seed=2, accesses=600)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


# ----------------------------------------------------------------------
# Repro pipeline: write, replay, shrink
# ----------------------------------------------------------------------
def test_hammer_schedule_replays_from_repro_file(tmp_path):
    memory = _memory()
    ops = boundary_hammer_ops(memory, region="ctr", seed=4)
    plan = plan_hammer(ops, _memory(), seed=4)
    assert plan.flips
    path = tmp_path / "repro-0-0-hammer.json"
    write_repro(path, 0, 0, "monolithic", 1 << 12, ops, plan.schedule,
                ["recorded failure"])
    failures, report = replay(path)
    assert failures == []  # the contract holds, so the replay is clean
    assert report is not None and report.clean
    assert {d.kind for d in report.detections} == {"hammer"}
    # The file itself carries the sixth kind with its target intact.
    case = json.loads(path.read_text())
    assert {s["kind"] for s in case["schedule"]} == {"hammer"}
    assert all(s["target"] in HAMMER_TARGETS for s in case["schedule"])


def test_shrink_preserves_failing_hammer_spec(monkeypatch):
    """Generic shrinking minimises a hammer case without dropping the kind."""
    from repro.verify import fuzz as fuzz_module

    memory = _memory()
    ops = boundary_hammer_ops(memory, region="data", seed=2)
    plan = plan_hammer(ops, _memory(), seed=2)
    assert plan.flips
    extra = TamperSpec(kind="bitflip", inject_at=1, block=ops[0].block, bit=0)
    schedule = [extra] + plan.schedule

    real = fuzz_module._attack_failures

    def fake_failures(scheme_name, num_blocks, candidate_ops, candidate_schedule):
        # Pretend the bug only reproduces while a hammer spec is present.
        if any(s.kind == "hammer" for s in candidate_schedule):
            return ["synthetic hammer failure"], None
        return real(scheme_name, num_blocks, candidate_ops, candidate_schedule)

    monkeypatch.setattr(fuzz_module, "_attack_failures", fake_failures)
    min_ops, min_schedule = shrink_case("monolithic", 1 << 12, list(ops), schedule)
    assert any(s.kind == "hammer" for s in min_schedule)
    assert all(s.kind == "hammer" for s in min_schedule)  # bitflip dropped
    assert len(min_ops) < len(ops)  # trace actually minimised
