"""Differential/property tests for analysis, paging and micro workloads."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.mem.access import MemoryAccess
from repro.mem.paging import (
    PAGE_SIZE,
    FirstTouchPageMapper,
    RandomizedPageMapper,
)
from repro.workloads.analysis import characterize, reuse_profile

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def naive_stack_distances(blocks):
    """O(N^2) reference implementation of the stack distance."""
    distances = []
    cold = 0
    for index, block in enumerate(blocks):
        previous = None
        for back in range(index - 1, -1, -1):
            if blocks[back] == block:
                previous = back
                break
        if previous is None:
            cold += 1
        else:
            distances.append(len(set(blocks[previous + 1 : index])))
    return distances, cold


@SETTINGS
@given(blocks=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=120))
def test_reuse_profile_matches_naive_reference(blocks):
    accesses = [MemoryAccess(block * 64) for block in blocks]
    profile = reuse_profile(accesses)
    expected_distances, expected_cold = naive_stack_distances(blocks)
    assert profile.distances == expected_distances
    assert profile.cold_misses == expected_cold


@SETTINGS
@given(blocks=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=200))
def test_hit_rate_monotone_in_capacity(blocks):
    profile = reuse_profile([MemoryAccess(block * 64) for block in blocks])
    rates = [profile.hit_rate_at(capacity) for capacity in (1, 2, 4, 8, 16, 64)]
    assert rates == sorted(rates)


@SETTINGS
@given(blocks=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
def test_characterize_invariants(blocks):
    accesses = [MemoryAccess(block * 64) for block in blocks]
    result = characterize(accesses)
    assert result.accesses == len(blocks)
    assert 1 <= result.distinct_blocks <= len(blocks)
    assert 0.0 <= result.sequential_fraction <= 1.0
    assert 0.0 <= result.top1pct_block_share <= 1.0
    assert result.entropy_bits >= 0.0


@SETTINGS
@given(
    vpns=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=200),
    seed=st.integers(min_value=0, max_value=100),
)
def test_randomized_mapper_is_injective_and_stable(vpns, seed):
    mapper = RandomizedPageMapper(seed=seed)
    frames = {}
    for vpn in vpns:
        frame = mapper.translate(vpn * PAGE_SIZE) >> 12
        if vpn in frames:
            assert frames[vpn] == frame  # stable
        frames[vpn] = frame
    # Injective: distinct vpns -> distinct frames.
    assert len(set(frames.values())) == len(frames)


@SETTINGS
@given(vpns=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=200))
def test_first_touch_mapper_is_dense(vpns):
    mapper = FirstTouchPageMapper()
    for vpn in vpns:
        mapper.translate(vpn * PAGE_SIZE)
    distinct = len(set(vpns))
    assert mapper.mapped_pages == distinct
    # Frames are exactly 0..distinct-1.
    frames = {mapper.translate(vpn * PAGE_SIZE) >> 12 for vpn in set(vpns)}
    assert frames == set(range(distinct))


@SETTINGS
@given(
    offsets=st.lists(st.integers(min_value=0, max_value=PAGE_SIZE - 1), min_size=1, max_size=50),
    seed=st.integers(min_value=0, max_value=20),
)
def test_mappers_preserve_page_offsets(offsets, seed):
    for mapper in (FirstTouchPageMapper(), RandomizedPageMapper(seed=seed)):
        for index, offset in enumerate(offsets):
            address = index * PAGE_SIZE + offset
            assert mapper.translate(address) % PAGE_SIZE == offset
