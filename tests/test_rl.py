"""Unit tests for the tabular RL primitives."""

import pytest

from repro.core.rl import Q_MAX, Q_MIN, EpsilonGreedy, QTable


class TestQTable:
    def test_initial_values(self):
        table = QTable(4, 2, initial_value=1.5)
        assert table.q(0, 0) == 1.5
        assert table.q(3, 1) == 1.5

    def test_best_action_ties_go_low(self):
        table = QTable(2, 2)
        assert table.best_action(0) == 0

    def test_best_action_tracks_updates(self):
        table = QTable(2, 2)
        table.update(0, 1, reward=10, alpha=1.0, gamma=0.0)
        assert table.best_action(0) == 1

    def test_update_rule_matches_formula(self):
        table = QTable(1, 2)
        # Q <- Q + a(R + g*B - Q) with Q=0, a=0.5, R=10, g=0.5, B=4 -> 6.0
        new = table.update(0, 0, reward=10, alpha=0.5, gamma=0.5, bootstrap=4.0)
        assert new == pytest.approx(6.0)

    def test_clamping_to_int8_range(self):
        table = QTable(1, 2)
        for _ in range(100):
            table.update(0, 0, reward=100, alpha=1.0, gamma=0.9, bootstrap=Q_MAX)
        assert table.q(0, 0) == Q_MAX
        for _ in range(100):
            table.update(0, 1, reward=-100, alpha=1.0, gamma=0.9, bootstrap=Q_MIN)
        assert table.q(0, 1) == Q_MIN

    def test_max_q(self):
        table = QTable(1, 3)
        table.update(0, 2, reward=5, alpha=1.0, gamma=0.0)
        assert table.max_q(0) == table.q(0, 2)

    def test_quantized_is_int(self):
        table = QTable(1, 2)
        table.update(0, 0, reward=3.7, alpha=1.0, gamma=0.0)
        assert isinstance(table.quantized(0, 0), int)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            QTable(0, 2)
        with pytest.raises(ValueError):
            QTable(4, 0)


class TestEpsilonGreedy:
    def test_zero_epsilon_always_exploits(self):
        table = QTable(1, 2)
        table.update(0, 1, reward=10, alpha=1.0, gamma=0.0)
        selector = EpsilonGreedy(0.0, seed=1)
        assert all(selector.select(table, 0) == 1 for _ in range(50))
        assert selector.explorations == 0

    def test_full_epsilon_always_explores(self):
        table = QTable(1, 2)
        selector = EpsilonGreedy(1.0, seed=1)
        actions = {selector.select(table, 0) for _ in range(50)}
        assert actions == {0, 1}
        assert selector.exploitations == 0

    def test_exploration_fraction_tracks_epsilon(self):
        table = QTable(1, 2)
        selector = EpsilonGreedy(0.25, seed=3)
        for _ in range(4000):
            selector.select(table, 0)
        assert abs(selector.exploration_fraction - 0.25) < 0.05

    def test_seeded_determinism(self):
        table = QTable(1, 2)
        a = EpsilonGreedy(0.5, seed=9)
        b = EpsilonGreedy(0.5, seed=9)
        assert [a.select(table, 0) for _ in range(30)] == [
            b.select(table, 0) for _ in range(30)
        ]

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(1.5)
