"""Integration tests: observability wired through sim, exec and the CLI.

The two contracts the tentpole promises:

* **on**: a run emits per-job span trees, a windowed time-series with at
  least four signals, a valid Chrome-trace JSON and a v2 run manifest;
* **off**: simulation metrics are byte-identical to an instrumented run
  and nothing is written — the golden-metrics suite plus the perf budget
  keep the hot path honest.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.exec import (
    MANIFEST_VERSION,
    JobSpec,
    ParallelRunner,
    ProgressTicker,
    ResultCache,
    RunReport,
    load_manifest,
)
from repro.obs.artifacts import (
    list_jobs,
    load_job_meta,
    obs_root,
    write_job_artifacts,
)
from repro.sim.config import small_test_config
from repro.sim.simulator import Simulator, build_design
from repro.workloads.micro import zipf_trace


def _run_simulator(design_name: str, n: int = 4000):
    config = small_test_config(num_cores=1)
    trace = zipf_trace(n=n, seed=7, write_fraction=0.4)
    simulator = Simulator(build_design(design_name, config), config, workload="zipf")
    result = simulator.run(trace.arrays())
    return simulator, result


# ----------------------------------------------------------------------
# Simulator sampling
# ----------------------------------------------------------------------
def test_sampler_absent_when_disabled():
    simulator, _ = _run_simulator("cosmos")
    assert simulator.sampler is None


def test_sampler_collects_signals_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "500")
    simulator, result = _run_simulator("cosmos")
    sampler = simulator.sampler
    assert sampler is not None
    series = sampler.series
    assert len(series) >= 8  # 4000 accesses / 500-window
    # The acceptance bar: at least four distinct windowed signals.
    assert len(series.signals) >= 4
    for expected in ("ctr_hit_rate", "mt_verify_depth",
                     "dram_row_hit_rate", "latency_per_access"):
        assert expected in series.signals
    # Cosmos designs add RL probes on top of the windowed rates.
    assert "rl_epsilon_d" in series.signals or "rl_epsilon_c" in series.signals
    assert series.axis[-1] == result.accesses


def test_sampler_rides_alongside_user_hook(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "1000")
    config = small_test_config(num_cores=1)
    trace = zipf_trace(n=3000, seed=7, write_fraction=0.4)
    seen = []
    simulator = Simulator(build_design("morphctr", config), config)
    simulator.run(trace.arrays(),
                  progress_hook=lambda done, sim: seen.append(done),
                  progress_interval=1500)
    assert seen == [1500, 3000]
    assert simulator.sampler is not None
    assert simulator.sampler.series.axis == [1000, 2000, 3000]


def test_engine_overflow_events_reach_ring(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "500")
    simulator, _ = _run_simulator("morphctr", n=6000)
    ring = simulator.sampler.events
    overflow_events = [e for e in ring.to_list() if e["kind"] == "ctr_overflow"]
    if simulator.design.engine.events.ctr_overflows > 0:
        assert overflow_events, "overflows occurred but no events recorded"
        assert all("ctr_index" in e for e in overflow_events)


# ----------------------------------------------------------------------
# Golden: obs on == obs off, metric-for-metric
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design_name", ["np", "morphctr", "cosmos"])
def test_metrics_identical_with_and_without_obs(monkeypatch, design_name):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    _, baseline = _run_simulator(design_name)
    obs.reset()
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "500")
    _, observed = _run_simulator(design_name)
    a = json.dumps(baseline.to_dict(), sort_keys=True)
    b = json.dumps(observed.to_dict(), sort_keys=True)
    assert a == b, f"observability perturbed {design_name} metrics"


# ----------------------------------------------------------------------
# Manifest v2
# ----------------------------------------------------------------------
def _stub_spec():
    return JobSpec(design="morphctr", workload="mlp", num_cores=1,
                   trace_length=64, config=small_test_config(num_cores=1))


def test_manifest_v2_roundtrip(tmp_path):
    report = RunReport(jobs_requested=2, workers=2, mode="pool")
    report.wall_time = 1.5
    report.metrics = {"exec.jobs_total": 3.0}
    report.spans = {"name": "exec.run", "total_s": 1.4,
                    "spans": [{"name": "execute", "start_s": 0.0,
                               "duration_s": 1.4}]}
    path = report.write_manifest(tmp_path)
    assert path is not None
    payload = json.loads(path.read_text())
    assert payload["manifest_version"] == MANIFEST_VERSION == 2
    loaded = load_manifest(path)
    assert loaded.metrics == {"exec.jobs_total": 3.0}
    assert loaded.spans["spans"][0]["name"] == "execute"
    assert loaded.mode == "pool"
    assert loaded.wall_time == 1.5


def test_manifest_v1_still_readable(tmp_path):
    v1 = {
        "manifest_version": 1,
        "jobs_requested": 1,
        "workers": 1,
        "mode": "serial",
        "totals": {"jobs": 1, "wall_time_s": 0.2},
        "jobs": [{"job_hash": "abc", "design": "np", "workload": "mlp",
                  "status": "ok", "attempts": 1, "wall_time_s": 0.2}],
    }
    path = tmp_path / "run-old.json"
    path.write_text(json.dumps(v1))
    report = load_manifest(path)
    assert report.spans is None
    assert report.metrics == {}
    assert report.records[0].design == "np"
    assert report.total == 1


def test_manifest_future_version_rejected():
    with pytest.raises(ValueError):
        RunReport.from_dict({"manifest_version": 99})


# ----------------------------------------------------------------------
# Runner end-to-end with observability
# ----------------------------------------------------------------------
def test_runner_emits_spans_metrics_and_trace(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "200")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache(tmp_path / "results")
    manifest_dir = tmp_path / "manifests"
    runner = ParallelRunner(jobs=1, cache=cache, manifest_dir=manifest_dir,
                            ticker=False)
    results = runner.run([_stub_spec()])
    assert len(results) == 1
    report = runner.report
    # Span tree: exec.run -> cache_probe / execute -> job -> sim phases.
    assert report.spans is not None
    names = [s["name"] for s in report.spans["spans"]]
    assert names == ["cache_probe", "execute"]
    job_spans = report.spans["spans"][1]["children"]
    assert job_spans and job_spans[0]["name"] == "job"
    # Metrics snapshot rode into the manifest.
    assert report.metrics["exec.jobs_total"] == 1.0
    assert "exec.job_wall_time_s" in report.metrics
    # The run got a trace-context identity, recorded in the manifest.
    assert report.run_id and report.run_id.startswith("run-")
    # Merged Chrome-trace sibling: complete events plus metadata events
    # carrying the run_id and per-process names.
    assert report.trace == report.manifest_path.with_suffix(".trace.json").name
    trace_path = report.manifest_path.with_suffix(".trace.json")
    events = json.loads(trace_path.read_text())
    assert isinstance(events, list) and events
    assert {e["ph"] for e in events} <= {"X", "M"}
    assert any(e["ph"] == "X" for e in events)
    run_meta = [e for e in events
                if e["ph"] == "M" and e["name"] == "run_id"]
    assert run_meta and run_meta[0]["args"]["run_id"] == report.run_id
    # Per-job artifacts landed under <cache>/obs/<hash16>/.
    jobs = list_jobs(obs_root(tmp_path))
    assert len(jobs) == 1
    meta = load_job_meta(jobs[0])
    assert meta["design"] == "morphctr"
    assert meta["samples"] >= 1
    assert len(meta["signals"]) >= 4
    # The job's own span tree holds the fine-grained phases.
    job_span_names = {s["name"] for s in meta["spans"]["spans"]}
    assert {"trace_gen", "simulate"} <= job_span_names
    job_trace = json.loads((jobs[0] / "spans.trace.json").read_text())
    assert any(e["name"] == "sim.run" for e in job_trace)


def test_merged_trace_spans_worker_processes(tmp_path, monkeypatch):
    """A --jobs 2 sweep merges into ONE trace holding every process's spans.

    The orchestrator's spans carry its own pid; each job's spans carry the
    pid of the pool worker that executed it; and a single run_id metadata
    event ties them together — the cross-process propagation contract.
    """
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_INTERVAL", "50")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    specs = [JobSpec(design=design, workload="mlp", num_cores=1,
                     trace_length=64, config=small_test_config(num_cores=1))
             for design in ("np", "morphctr", "cosmos")]
    runner = ParallelRunner(jobs=2, cache=ResultCache(tmp_path / "results"),
                            manifest_dir=tmp_path / "manifests", ticker=False)
    results = runner.run(specs)
    assert len(results) == 3
    report = runner.report
    if report.mode not in ("pool", "pool+serial"):
        pytest.skip(f"no process pool in this environment ({report.mode})")

    trace_path = report.manifest_path.with_suffix(".trace.json")
    assert report.trace == trace_path.name
    events = json.loads(trace_path.read_text())
    complete = [e for e in events if e["ph"] == "X"]
    orchestrator_pid = os.getpid()
    worker_pids = {e["pid"] for e in complete} - {orchestrator_pid}
    # Orchestrator spans plus at least one distinct worker process.
    assert orchestrator_pid in {e["pid"] for e in complete}
    assert worker_pids, "no spans attributed to worker processes"
    # One run_id names the whole merged trace.
    run_meta = [e for e in events if e["ph"] == "M" and e["name"] == "run_id"]
    assert len(run_meta) == 1
    assert run_meta[0]["args"]["run_id"] == report.run_id
    # Every worker pid got a process_name metadata event.
    named = {e["pid"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"
             and str(e["args"]["name"]).startswith("worker pid")}
    assert named == worker_pids
    # Job spans are labelled with the run for trace-viewer filtering.
    worker_spans = [e for e in complete if e["pid"] in worker_pids]
    assert all(e["args"]["run_id"] == report.run_id for e in worker_spans)
    # And the job artifacts themselves recorded the propagated identity.
    for job in list_jobs(obs_root(tmp_path)):
        meta = load_job_meta(job)
        assert meta["run_id"] == report.run_id
        assert meta["origin"] == "exec.run"
        assert meta["pid"] != orchestrator_pid


def test_runner_writes_nothing_when_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ResultCache(tmp_path / "results")
    manifest_dir = tmp_path / "manifests"
    runner = ParallelRunner(jobs=1, cache=cache, manifest_dir=manifest_dir,
                            ticker=False)
    runner.run([_stub_spec()])
    assert runner.report.spans is None
    assert runner.report.metrics == {}
    assert not obs_root(tmp_path).exists()
    manifest = json.loads(runner.report.manifest_path.read_text())
    assert manifest["manifest_version"] == 2
    assert manifest["spans"] is None


# ----------------------------------------------------------------------
# Artifacts helper
# ----------------------------------------------------------------------
def test_write_job_artifacts_best_effort(tmp_path):
    recorder = obs.SpanRecorder("job")
    with obs.recording(recorder):
        with obs.span("simulate"):
            pass
    ring = obs.EventRing()
    ring.record("ctr_overflow", at=3)
    written = write_job_artifacts(tmp_path / "obs", "deadbeef" * 8,
                                  recorder=recorder, events=ring,
                                  meta={"design": "np"})
    assert set(written) == {"trace", "events", "meta"}
    meta = load_job_meta(written["meta"].parent)
    assert meta["design"] == "np"
    assert meta["events"]["total"] == 1
    # Unwritable root degrades to in-memory only, never raises.
    blocked = tmp_path / "file-not-dir"
    blocked.write_text("x")
    assert write_job_artifacts(blocked / "obs", "ff" * 32,
                               recorder=recorder) == {}


# ----------------------------------------------------------------------
# Ticker behaviour
# ----------------------------------------------------------------------
def test_ticker_clamps_to_terminal_width(monkeypatch, capsys):
    monkeypatch.setattr(ProgressTicker, "_columns", staticmethod(lambda: 40))
    ticker = ProgressTicker(total=123456789, enabled=True)
    ticker.update(12345678, 9999999, 88, force=True)
    out = capsys.readouterr().err
    drawn = out.rsplit("\r", 1)[-1]
    assert len(drawn) <= 39
    assert drawn.endswith("…") or len(drawn) < 39
    ticker.close()


def test_ticker_close_logs_summary_even_when_disabled(capsys):
    import logging
    import sys

    from repro.obs.log import setup_logging

    setup_logging(level=logging.INFO, stream=sys.stderr, force=True)
    ticker = ProgressTicker(total=2, enabled=False)
    ticker.update(1, 0, 1)  # no-op while disabled
    ticker.close(summary="2 jobs in 0.1s · done")
    err = capsys.readouterr().err
    assert "2 jobs in 0.1s · done" in err
    assert "\r" not in err  # nothing was ever drawn live
