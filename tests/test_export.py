"""Tests for the result export module."""

import csv
import json

import pytest

from repro.bench.export import (
    export_experiment,
    read_json,
    write_csv,
    write_json,
    write_markdown,
)

ROWS = [
    {"workload": "dfs", "morphctr": 0.55, "cosmos": 0.67},
    {"workload": "bfs", "morphctr": 0.52, "cosmos": 0.64, "extra": "note"},
]


def test_write_csv_roundtrip(tmp_path):
    path = write_csv(ROWS, tmp_path / "out.csv")
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert rows[0]["workload"] == "dfs"
    assert float(rows[1]["cosmos"]) == 0.64
    assert rows[0]["extra"] == ""  # union of columns


def test_write_json_envelope(tmp_path):
    path = write_json(ROWS, tmp_path / "out.json", experiment="fig10")
    document = json.loads(path.read_text())
    assert document["experiment"] == "fig10"
    assert document["rows"][0]["morphctr"] == 0.55


def test_read_json_roundtrip(tmp_path):
    path = write_json(ROWS, tmp_path / "out.json")
    assert read_json(path) == ROWS


def test_write_markdown_table(tmp_path):
    path = write_markdown(ROWS, tmp_path / "out.md", title="Figure 10")
    text = path.read_text()
    assert text.startswith("# Figure 10")
    assert "| workload |" in text
    assert "| dfs |" in text
    assert "0.55" in text


def test_export_experiment_all_formats(tmp_path):
    written = export_experiment(ROWS, tmp_path / "results", "fig10",
                                formats=("csv", "json", "md"))
    assert sorted(path.suffix for path in written) == [".csv", ".json", ".md"]
    for path in written:
        assert path.exists()


def test_export_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        export_experiment(ROWS, tmp_path, "x", formats=("xlsx",))


def test_directories_created(tmp_path):
    nested = tmp_path / "a" / "b" / "out.csv"
    write_csv(ROWS, nested)
    assert nested.exists()
