"""Shared fixtures: small configurations and traces for fast tests."""

from __future__ import annotations

import random

import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.sim.config import SimulationConfig, small_test_config
from repro.workloads.graph import preferential_attachment_graph
from repro.workloads.graph_algos import generate_graph_trace


@pytest.fixture(autouse=True)
def _hermetic_exec_env(monkeypatch):
    """Insulate every test from ambient execution knobs.

    The suite's fixtures assert exact trace lengths and serial behaviour,
    so an outer ``REPRO_QUICK=1`` (e.g. the CI workflow) or ``REPRO_JOBS``
    must not leak in.  Explicit exec-option overrides and observability
    state (registry, span recorder, enabled override) are also dropped
    between tests.

    ``REPRO_SIM_PATH`` is deliberately *not* stripped: every dispatch
    path is metric-identical by contract, so an outer
    ``REPRO_SIM_PATH=batched`` runs the whole suite through the batched
    kernel — a cheap way for CI to exercise it against every test's
    expectations without a dedicated matrix.
    """
    from repro import obs
    from repro.exec import reset_options

    for var in ("REPRO_QUICK", "REPRO_JOBS", "REPRO_NO_CACHE", "REPRO_JOB_TIMEOUT",
                "REPRO_TRACE_LEN", "REPRO_GRAPH_SCALE", "REPRO_CACHE_DIR",
                "REPRO_OBS", "REPRO_OBS_INTERVAL", "REPRO_LOG", "REPRO_NO_TICKER",
                "REPRO_SERVE", "REPRO_JOBS_CAP", "REPRO_TRACE_CTX"):
        monkeypatch.delenv(var, raising=False)
    reset_options()
    obs.reset()
    yield
    reset_options()
    obs.reset()


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A single-core configuration with very small caches."""
    return small_test_config(num_cores=1)


@pytest.fixture
def quad_config() -> SimulationConfig:
    """A four-core configuration with very small caches."""
    return small_test_config(num_cores=4)


@pytest.fixture(scope="session")
def small_graph():
    """A small scale-free graph reused across tests."""
    return preferential_attachment_graph(600, edges_per_vertex=4, seed=3)


@pytest.fixture(scope="session")
def dfs_trace(small_graph):
    """A short single-core DFS trace over the small graph."""
    return generate_graph_trace(
        "dfs", graph=small_graph, num_cores=1, max_accesses=6000, seed=5
    )


def random_trace(n: int, footprint_blocks: int, write_fraction: float = 0.3,
                 seed: int = 0, cores: int = 1):
    """Uniform-random synthetic accesses (helper, not a fixture)."""
    rng = random.Random(seed)
    accesses = []
    for index in range(n):
        address = rng.randrange(footprint_blocks) * 64
        kind = AccessType.WRITE if rng.random() < write_fraction else AccessType.READ
        accesses.append(MemoryAccess(address, kind, index % cores))
    return accesses
