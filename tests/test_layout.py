"""Unit tests for the secure address-space layout."""

import pytest

from repro.secure.layout import SecureLayout


def test_paper_geometry_32gb():
    layout = SecureLayout.for_memory_size(32 * 1024**3, blocks_per_ctr=128)
    assert layout.data_blocks == 536_870_912  # ~537M lines, Sec. 3.1
    assert layout.ctr_blocks == 4_194_304
    # Paper: log2(537M/128) ~ 22 MT levels for the binary tree.
    assert layout.mt_levels == 22


def test_regions_do_not_overlap():
    layout = SecureLayout(data_blocks=1 << 20)
    assert layout.ctr_region_base == layout.data_blocks
    assert layout.mac_region_base == layout.ctr_region_base + layout.ctr_blocks
    assert layout.mt_region_base == layout.mac_region_base + layout.mac_blocks


def test_ctr_block_address_bounds():
    layout = SecureLayout(data_blocks=1024)
    assert layout.ctr_block_address(0) == layout.ctr_region_base
    with pytest.raises(ValueError):
        layout.ctr_block_address(layout.ctr_blocks)
    with pytest.raises(ValueError):
        layout.ctr_block_address(-1)


def test_mac_packing_8_per_line():
    layout = SecureLayout(data_blocks=64)
    assert layout.mac_blocks == 8
    assert layout.mac_block_address(0) == layout.mac_block_address(7)
    assert layout.mac_block_address(8) == layout.mac_block_address(0) + 1


def test_mac_address_bounds():
    layout = SecureLayout(data_blocks=64)
    with pytest.raises(ValueError):
        layout.mac_block_address(64)


def test_mt_path_lengths_and_root_exclusion():
    layout = SecureLayout(data_blocks=1 << 16, blocks_per_ctr=128)
    path = layout.mt_path(0)
    assert len(path) == layout.mt_levels - 1  # root pinned on-chip
    assert len(set(path)) == len(path)  # distinct nodes


def test_mt_path_addresses_in_mt_region():
    layout = SecureLayout(data_blocks=1 << 16)
    for node in layout.mt_path(3):
        assert node >= layout.mt_region_base


def test_sibling_ctrs_share_upper_path():
    layout = SecureLayout(data_blocks=1 << 18, blocks_per_ctr=128, mt_arity=2)
    path0 = layout.mt_path(0)
    path1 = layout.mt_path(1)
    assert path0 == path1  # counters 0 and 1 share the same parent chain
    path_far = layout.mt_path(layout.ctr_blocks - 1)
    assert len(path_far) == len(path0)
    # The last fetched level sits just below the on-chip root, so the two
    # extreme counters land on sibling nodes there.
    assert abs(path0[-1] - path_far[-1]) <= layout.mt_arity - 1


def test_mt_arity_8_is_shallower():
    binary = SecureLayout(data_blocks=1 << 20, mt_arity=2)
    octal = SecureLayout(data_blocks=1 << 20, mt_arity=8)
    assert octal.mt_levels < binary.mt_levels


def test_level_node_counts_shrink():
    layout = SecureLayout(data_blocks=1 << 18)
    counts = [layout.mt_nodes_at_level(level) for level in range(layout.mt_levels)]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 1  # root level


def test_invalid_parameters():
    with pytest.raises(ValueError):
        SecureLayout(data_blocks=0)
    with pytest.raises(ValueError):
        SecureLayout(data_blocks=10, blocks_per_ctr=0)
    with pytest.raises(ValueError):
        SecureLayout(data_blocks=10, mt_arity=1)


def test_mt_node_address_bounds():
    layout = SecureLayout(data_blocks=1 << 12)
    with pytest.raises(ValueError):
        layout.mt_node_address(layout.mt_levels, 0)


def test_mt_path_bounds():
    layout = SecureLayout(data_blocks=1 << 12)
    with pytest.raises(ValueError):
        layout.mt_path(layout.ctr_blocks)
