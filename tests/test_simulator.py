"""Unit tests for the trace-driven simulator layer."""

import pytest

from repro.mem.access import MemoryAccess
from repro.sim.config import SimulationConfig, scaled_paper_config, small_test_config
from repro.sim.simulator import Simulator, build_design, build_layout, simulate, simulate_designs


def test_build_layout_respects_scheme(tiny_config):
    layout = build_layout(tiny_config)
    assert layout.blocks_per_ctr == 128  # morphctr default
    config = SimulationConfig(
        hierarchy=tiny_config.hierarchy,
        memory_bytes=tiny_config.memory_bytes,
        counter_scheme="split",
        engine=tiny_config.engine,
        cosmos=tiny_config.cosmos,
        cpu=tiny_config.cpu,
    )
    assert build_layout(config).blocks_per_ctr == 64


def test_build_design_wires_config(tiny_config):
    design = build_design("morphctr", tiny_config)
    assert design.engine.config.ctr_cache_bytes == tiny_config.engine.ctr_cache_bytes
    cosmos = build_design("cosmos", tiny_config)
    assert cosmos.cosmos_config is tiny_config.cosmos


def test_simulate_counts_accesses(tiny_config, dfs_trace):
    result = simulate("np", dfs_trace, tiny_config, workload="dfs")
    assert result.accesses == len(dfs_trace)
    assert result.workload == "dfs"
    assert result.design == "np"
    assert result.cycles > 0
    assert result.ipc > 0


def test_progress_hook_invoked(tiny_config, dfs_trace):
    design = build_design("np", tiny_config)
    simulator = Simulator(design, tiny_config, "dfs")
    snapshots = []
    simulator.run(dfs_trace, progress_hook=lambda done, sim: snapshots.append(done),
                  progress_interval=1000)
    assert snapshots == [1000, 2000, 3000, 4000, 5000, 6000]


def test_cycles_include_bandwidth_term(tiny_config, dfs_trace):
    result_np = simulate("np", dfs_trace, tiny_config)
    result_secure = simulate("morphctr", dfs_trace, tiny_config)
    # Secure designs move more DRAM traffic, so with identical latencies
    # and issue counts, their cycle counts must be strictly larger.
    assert result_secure.cycles > result_np.cycles


def test_simulate_designs_runs_all(tiny_config, dfs_trace):
    results = simulate_designs(
        ["np", "morphctr"], lambda: list(dfs_trace), tiny_config, workload="dfs"
    )
    assert set(results) == {"np", "morphctr"}
    assert results["np"].accesses == len(dfs_trace)


def test_result_extras_for_cosmos(tiny_config, dfs_trace):
    result = simulate("cosmos", dfs_trace, tiny_config)
    assert "prediction_accuracy" in result.extra
    assert "good_locality_fraction" in result.extra
    assert "bypass_fraction" in result.extra
    distribution_sum = sum(
        result.extra[key]
        for key in ("pred_correct_on_chip", "pred_correct_off_chip",
                    "pred_wrong_on_chip", "pred_wrong_off_chip")
    )
    assert distribution_sum == pytest.approx(1.0, abs=1e-6)


def test_scaled_paper_config_ratios():
    config = scaled_paper_config(scale=16)
    assert config.hierarchy.llc.size_bytes == 512 * 1024
    assert config.engine.ctr_cache_bytes == 32 * 1024
    assert config.cosmos.lcr_cache_bytes == 32 * 1024
    assert config.hierarchy.llc.latency == 128  # latencies preserved


def test_scaled_paper_config_rejects_bad_scale():
    with pytest.raises(ValueError):
        scaled_paper_config(scale=0)


def test_with_cores_scales_llc():
    config = scaled_paper_config(scale=16).with_cores(8)
    assert config.hierarchy.num_cores == 8
    # 2MB/core rule applied to whatever LLC the base had.
    assert config.hierarchy.llc.size_bytes == 16 * 1024 * 1024


def test_with_ctr_cache_bytes():
    config = small_test_config().with_ctr_cache_bytes(16 * 1024)
    assert config.engine.ctr_cache_bytes == 16 * 1024


def test_empty_trace_gives_zero_result(tiny_config):
    result = simulate("np", [], tiny_config)
    assert result.accesses == 0
    assert result.ipc == 0.0
    assert result.average_latency == 0.0


def test_normalization_helpers(tiny_config, dfs_trace):
    np_result = simulate("np", dfs_trace, tiny_config)
    secure = simulate("morphctr", dfs_trace, tiny_config)
    normalized = secure.normalized_to(np_result)
    assert 0.0 < normalized < 1.0  # secure memory costs performance
    assert np_result.speedup_over(secure) > 1.0
