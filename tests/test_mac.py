"""Unit tests for the MAC model."""

from repro.secure.mac import MACS_PER_LINE, MacStore, MacTrafficModel, compute_mac


def test_mac_is_64_bits():
    mac = compute_mac(b"cipher", 0x40, 1)
    assert 0 <= mac < (1 << 64)


def test_mac_depends_on_every_input():
    base = compute_mac(b"cipher", 0x40, 1)
    assert compute_mac(b"ciphex", 0x40, 1) != base
    assert compute_mac(b"cipher", 0x80, 1) != base
    assert compute_mac(b"cipher", 0x40, 2) != base
    assert compute_mac(b"cipher", 0x40, 1, key=b"other") != base


def test_store_verify_roundtrip():
    store = MacStore()
    store.update(5, b"ciphertext", counter=3)
    assert store.verify(5, b"ciphertext", counter=3)


def test_store_detects_tampered_ciphertext():
    store = MacStore()
    store.update(5, b"ciphertext", counter=3)
    assert not store.verify(5, b"CIPHERTEXT", counter=3)


def test_store_detects_replayed_counter():
    store = MacStore()
    store.update(5, b"old", counter=3)
    store.update(5, b"new", counter=4)
    # Replaying the old pair fails because the stored MAC covers the new one.
    assert not store.verify(5, b"old", counter=3)
    assert store.verify(5, b"new", counter=4)


def test_unknown_block_fails_verification():
    assert not MacStore().verify(1, b"x", counter=0)


def test_known_blocks_count():
    store = MacStore()
    store.update(1, b"a", 0)
    store.update(2, b"b", 0)
    store.update(1, b"c", 1)
    assert store.known_blocks() == 2


def test_traffic_model_one_in_eight():
    model = MacTrafficModel()
    charged = [model.on_data_access() for _ in range(MACS_PER_LINE * 3)]
    assert sum(charged) == 3
    # Exactly every 8th access is charged.
    assert charged[MACS_PER_LINE - 1] is True
    assert all(not c for c in charged[: MACS_PER_LINE - 1])
    assert model.accesses_charged == 3
