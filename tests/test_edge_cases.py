"""Corner-case tests across the stack."""

import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.sim.config import small_test_config
from repro.sim.simulator import build_design, simulate


class TestDegenerateTraces:
    def test_single_access(self, tiny_config):
        result = simulate("cosmos", [MemoryAccess(0)], tiny_config)
        assert result.accesses == 1
        assert result.l1_miss_rate == 1.0

    def test_all_writes(self, tiny_config):
        trace = [MemoryAccess(block * 64, AccessType.WRITE) for block in range(500)]
        result = simulate("morphctr", trace, tiny_config)
        assert result.accesses == 500
        # Dirty lines have not been evicted yet: writes are still on-chip.
        assert result.traffic.data_reads > 0  # write-allocate fetches

    def test_same_block_hammered(self, tiny_config):
        trace = [MemoryAccess(64)] * 1000
        result = simulate("cosmos", trace, tiny_config)
        assert result.l1_miss_rate == pytest.approx(1 / 1000)
        # One data fetch + one CTR fetch + one cold Merkle walk, nothing more.
        assert result.traffic.data_reads == 1
        assert result.traffic.ctr_reads == 1
        assert result.traffic.total <= 2 + result.traffic.mt_reads

    def test_address_at_memory_top(self, tiny_config):
        top_block = tiny_config.memory_bytes // 64 - 1
        result = simulate("morphctr", [MemoryAccess(top_block * 64)], tiny_config)
        assert result.accesses == 1

    def test_alternating_read_write_same_line(self, tiny_config):
        trace = []
        for index in range(200):
            kind = AccessType.WRITE if index % 2 else AccessType.READ
            trace.append(MemoryAccess(128, kind))
        result = simulate("cosmos-cp", trace, tiny_config)
        assert result.accesses == 200


class TestMulticoreEdges:
    def test_one_core_of_many_active(self):
        config = small_test_config(num_cores=4)
        trace = [MemoryAccess(block * 64, core=2) for block in range(300)]
        result = simulate("cosmos", trace, config)
        assert result.accesses == 300

    def test_cores_thrash_shared_line(self):
        config = small_test_config(num_cores=2)
        trace = []
        for index in range(400):
            trace.append(MemoryAccess(0, AccessType.WRITE, core=index % 2))
        result = simulate("morphctr", trace, config)
        # Both cores keep private copies after the shared fill; the model
        # has no coherence invalidations, so this stays cheap but legal.
        assert result.accesses == 400


class TestDesignStateAfterHeavyChurn:
    def test_ctr_cache_never_overfills(self, tiny_config):
        design = build_design("cosmos", tiny_config)
        import random

        rng = random.Random(0)
        for _ in range(20_000):
            design.process(MemoryAccess(rng.randrange(1 << 18) * 64))
        cache = design.engine.ctr_cache.cache
        assert cache.occupancy <= cache.capacity_lines

    def test_mt_cache_never_overfills(self, tiny_config):
        design = build_design("morphctr", tiny_config)
        import random

        rng = random.Random(1)
        for _ in range(20_000):
            design.process(MemoryAccess(rng.randrange(1 << 18) * 64))
        node_cache = design.engine.integrity.node_cache
        assert node_cache.occupancy <= node_cache.capacity_lines

    def test_q_values_stay_clamped_under_churn(self, tiny_config):
        design = build_design("cosmos", tiny_config)
        import random

        rng = random.Random(2)
        for _ in range(20_000):
            design.process(MemoryAccess(rng.randrange(1 << 16) * 64))
        table = design.controller.location.q_table
        for state in range(0, table.num_states, 257):
            for action in (0, 1):
                assert -128.0 <= table.q(state, action) <= 127.0
