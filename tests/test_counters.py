"""Unit tests for the counter organisations (mono / split / MorphCtr)."""

import pytest

from repro.secure.counters import (
    MonolithicCounters,
    MorphCtrCounters,
    SplitCounters,
    make_counter_scheme,
)


class TestMonolithic:
    def test_coverage_ratio(self):
        assert MonolithicCounters.blocks_per_ctr == 8  # 8x 64-bit per line

    def test_increment_and_read(self):
        scheme = MonolithicCounters()
        assert scheme.counter_value(5) == 0
        scheme.increment(5)
        scheme.increment(5)
        assert scheme.counter_value(5) == 2
        assert scheme.counter_value(6) == 0

    def test_never_overflows(self):
        scheme = MonolithicCounters()
        for _ in range(1000):
            assert scheme.increment(0) is None

    def test_updates_tracked_per_line(self):
        scheme = MonolithicCounters()
        scheme.increment(0)
        scheme.increment(7)  # same line (blocks 0-7)
        scheme.increment(8)  # next line
        assert scheme.updates_to(0) == 2
        assert scheme.updates_to(1) == 1


class TestSplit:
    def test_coverage_ratio(self):
        assert SplitCounters.blocks_per_ctr == 64

    def test_minor_isolated_per_block(self):
        scheme = SplitCounters()
        scheme.increment(0)
        assert scheme.counter_value(0) == 1
        assert scheme.counter_value(1) == 0

    def test_minor_overflow_triggers_reencryption(self):
        scheme = SplitCounters()
        event = None
        for _ in range(128):
            event = scheme.increment(3)
            if event is not None:
                break
        assert event is not None
        assert event.num_blocks == 64
        assert event.dram_requests == 128
        # Major advanced, minors reset.
        assert scheme.counter_value(3) == 1 << 7

    def test_counter_monotonicity_across_overflow(self):
        scheme = SplitCounters()
        seen = set()
        for _ in range(300):
            scheme.increment(0)
            value = scheme.counter_value(0)
            assert value not in seen, "counter values must never repeat"
            seen.add(value)


class TestMorphCtr:
    def test_coverage_ratio_is_1_to_128(self):
        assert MorphCtrCounters.blocks_per_ctr == 128

    def test_uniform_format_holds_small_minors(self):
        scheme = MorphCtrCounters()
        for block in range(128):
            for _ in range(7):
                assert scheme.increment(block) is None
        assert scheme.line_format(0) == "uniform"

    def test_zcc_allows_deep_sparse_counters(self):
        scheme = MorphCtrCounters()
        # A single hot block can go far beyond 7 before overflow.
        overflowed_at = None
        for update in range(1, 5000):
            if scheme.increment(0) is not None:
                overflowed_at = update
                break
        assert overflowed_at is None or overflowed_at > 100
        assert scheme.line_format(0) in ("zcc", "uniform")

    def test_dense_deep_usage_overflows(self):
        scheme = MorphCtrCounters()
        event = None
        for round_index in range(100):
            for block in range(128):
                event = scheme.increment(block) or event
            if event:
                break
        assert event is not None
        assert event.num_blocks == 128
        assert event.dram_requests == 256

    def test_representable_formats(self):
        assert MorphCtrCounters.format_of({}) == "uniform"
        assert MorphCtrCounters.format_of({0: 7}) == "uniform"
        assert MorphCtrCounters.format_of({0: 100}) == "zcc"
        dense_deep = {block: 30 for block in range(128)}
        assert MorphCtrCounters.format_of(dense_deep) == "overflow"

    def test_counter_values_distinct_across_blocks(self):
        scheme = MorphCtrCounters()
        scheme.increment(0)
        scheme.increment(1)
        scheme.increment(1)
        assert scheme.counter_value(0) != scheme.counter_value(1)

    def test_ctr_index_mapping(self):
        scheme = MorphCtrCounters()
        assert scheme.ctr_index(0) == 0
        assert scheme.ctr_index(127) == 0
        assert scheme.ctr_index(128) == 1

    def test_storage_density_ordering(self):
        mono = MonolithicCounters().storage_bits_per_data_block()
        split = SplitCounters().storage_bits_per_data_block()
        morph = MorphCtrCounters().storage_bits_per_data_block()
        assert mono > split > morph


class TestFactory:
    @pytest.mark.parametrize("name", ["monolithic", "split", "morphctr"])
    def test_make(self, name):
        assert make_counter_scheme(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_counter_scheme("quantum")
