"""Tests for the Synergy-style MAC-in-ECC design variants."""

import random

from repro.mem.access import MemoryAccess
from repro.mem.hierarchy import HierarchyConfig, LevelConfig
from repro.secure.designs import make_design
from repro.secure.engine import EngineConfig
from repro.secure.layout import SecureLayout


def kwargs():
    return {
        "hierarchy_config": HierarchyConfig(
            num_cores=1,
            l1=LevelConfig(2 * 1024, 2, 2),
            l2=LevelConfig(8 * 1024, 4, 20),
            llc=LevelConfig(32 * 1024, 8, 128),
        ),
        "layout": SecureLayout(data_blocks=1 << 22, blocks_per_ctr=128),
        "engine_config": EngineConfig(ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024),
    }


def drive(design, n=3000, seed=0):
    rng = random.Random(seed)
    for _ in range(n):
        design.process(MemoryAccess(rng.randrange(1 << 15) * 64))
    return design


def test_names():
    assert make_design("synergy", **kwargs()).name == "synergy"
    assert make_design("cosmos-synergy", **kwargs()).name == "cosmos-synergy"


def test_synergy_removes_mac_traffic():
    synergy = drive(make_design("synergy", **kwargs()))
    baseline = drive(make_design("morphctr", **kwargs()))
    assert synergy.traffic().mac_accesses == 0
    assert baseline.traffic().mac_accesses > 0
    # Everything else behaves like the baseline.
    assert synergy.traffic().ctr_reads == baseline.traffic().ctr_reads
    assert synergy.ctr_miss_rate() == baseline.ctr_miss_rate()


def test_cosmos_synergy_keeps_cosmos_machinery():
    design = make_design("cosmos-synergy", **kwargs())
    assert design.controller.location is not None
    assert design.controller.locality is not None
    assert design.engine.ctr_cache.cache.policy.name == "lcr"
    assert design.engine.config.mac_in_ecc
    drive(design)
    assert design.stats.bypasses + design.stats.fallback_fetches > 0


def test_engine_config_not_mutated_for_caller():
    config = EngineConfig(ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024)
    base = kwargs()
    base["engine_config"] = config
    make_design("synergy", **base)
    assert config.mac_in_ecc is False  # replace(), not in-place mutation


def test_synergy_total_traffic_strictly_lower():
    synergy = drive(make_design("synergy", **kwargs()))
    baseline = drive(make_design("morphctr", **kwargs()))
    assert synergy.traffic().total < baseline.traffic().total
