"""Tests for the functional (bit-accurate) secure memory."""

import pytest

from repro.secure.counters import SplitCounters
from repro.secure.functional import (
    FunctionalSecureMemory,
    IntegrityViolation,
)


@pytest.fixture
def memory():
    return FunctionalSecureMemory(num_blocks=1024)


def test_write_read_roundtrip(memory):
    memory.write(7, b"hello secure world")
    assert memory.read(7).rstrip(b"\x00") == b"hello secure world"


def test_padding_to_line_size(memory):
    memory.write(1, b"x")
    assert len(memory.read(1)) == 64


def test_oversized_write_rejected(memory):
    with pytest.raises(ValueError):
        memory.write(1, b"y" * 65)


def test_unwritten_read_raises(memory):
    with pytest.raises(KeyError):
        memory.read(3)


def test_out_of_range_block(memory):
    with pytest.raises(ValueError):
        memory.write(1024, b"z")
    with pytest.raises(ValueError):
        memory.read(-1)


def test_ciphertext_is_not_plaintext(memory):
    memory.write(9, b"A" * 64)
    assert memory.snapshot_ciphertext(9) != b"A" * 64


def test_counter_mode_freshness(memory):
    memory.write(9, b"A" * 64)
    first = memory.snapshot_ciphertext(9)
    memory.write(9, b"A" * 64)
    assert memory.snapshot_ciphertext(9) != first


def test_tampering_detected(memory):
    memory.write(5, b"B" * 64)
    ciphertext = memory.snapshot_ciphertext(5)
    memory.tamper_ciphertext(5, bytes([ciphertext[0] ^ 1]) + ciphertext[1:])
    with pytest.raises(IntegrityViolation):
        memory.read(5)
    assert memory.stats.violations_detected == 1


def test_replay_detected(memory):
    memory.write(6, b"version-one" + b"\x00" * 53)
    stale = memory.snapshot_ciphertext(6)
    memory.write(6, b"version-two" + b"\x00" * 53)
    memory.tamper_ciphertext(6, stale)
    with pytest.raises(IntegrityViolation):
        memory.read(6)


def test_neighbors_unaffected_by_writes(memory):
    memory.write(10, b"ten")
    memory.write(11, b"eleven")
    memory.write(10, b"TEN")
    assert memory.read(11).rstrip(b"\x00") == b"eleven"
    assert memory.read(10).rstrip(b"\x00") == b"TEN"


def test_reencryption_preserves_all_data():
    """Overflow a split counter's minor and verify the page re-encrypts."""
    memory = FunctionalSecureMemory(num_blocks=256, scheme=SplitCounters())
    # Populate several blocks in the same counter page.
    for block in range(8):
        memory.write(block, bytes([block + 1]) * 64)
    # Hammer one block until its 7-bit minor overflows (128 increments).
    for index in range(130):
        memory.write(0, bytes([index % 250]) * 64)
    assert memory.stats.reencryptions >= 1
    # Every other block in the page must still decrypt and authenticate.
    for block in range(1, 8):
        assert memory.read(block) == bytes([block + 1]) * 64


def test_reads_after_reencryption_fresh_block():
    memory = FunctionalSecureMemory(num_blocks=256, scheme=SplitCounters())
    for index in range(130):
        memory.write(3, bytes([index % 200]) * 64)
    assert memory.read(3) == bytes([129 % 200]) * 64


def test_stats_counters(memory):
    memory.write(1, b"a")
    memory.write(2, b"b")
    memory.read(1)
    assert memory.stats.writes == 2
    assert memory.stats.reads == 1
    assert memory.resident_blocks == 2


def test_invalid_capacity():
    with pytest.raises(ValueError):
        FunctionalSecureMemory(num_blocks=0)
