"""Unit tests for the splitmix64 state hashing."""

import pytest

from repro.core.hashing import (
    DEFAULT_NUM_STATES,
    address_state_bits,
    hash_address,
    hash_block,
    splitmix64,
)


def test_splitmix64_is_deterministic():
    assert splitmix64(12345) == splitmix64(12345)


def test_splitmix64_stays_64_bit():
    for value in (0, 1, (1 << 64) - 1, 0xDEADBEEF):
        assert 0 <= splitmix64(value) < (1 << 64)


def test_splitmix64_avalanche():
    # Single-bit input changes flip many output bits.
    a = splitmix64(0)
    b = splitmix64(1)
    assert bin(a ^ b).count("1") > 16


def test_address_state_bits_drop_block_offset():
    assert address_state_bits(0x1234) == address_state_bits(0x1234 | 0x3F & 0x3F) or True
    # Bits 0-5 are ignored:
    assert address_state_bits(0x1000) == address_state_bits(0x103F)
    assert address_state_bits(0x1000) != address_state_bits(0x1040)


def test_address_state_bits_cap_at_bit_47():
    assert address_state_bits(1 << 48) == 0


def test_hash_address_range():
    for address in (0, 64, 4096, 1 << 40):
        assert 0 <= hash_address(address) < DEFAULT_NUM_STATES


def test_hash_block_consistent_with_hash_address():
    address = 0x12340
    assert hash_address(address) == hash_block(address >> 6)


def test_hash_distribution_roughly_uniform():
    buckets = [0] * 64
    for block in range(64 * 500):
        buckets[hash_block(block, 64)] += 1
    assert min(buckets) > 300
    assert max(buckets) < 700


def test_invalid_num_states():
    with pytest.raises(ValueError):
        hash_address(0, num_states=0)
    with pytest.raises(ValueError):
        hash_block(0, num_states=-5)
