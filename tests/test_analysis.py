"""Tests for the trace-analysis module."""

import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.workloads.analysis import (
    TraceCharacterization,
    characterize,
    ctr_line_popularity,
    reuse_profile,
    working_set_curve,
)


def stream(blocks, writes=()):
    return [
        MemoryAccess(block * 64, AccessType.WRITE if i in writes else AccessType.READ)
        for i, block in enumerate(blocks)
    ]


class TestReuseProfile:
    def test_cold_misses_counted(self):
        profile = reuse_profile(stream([1, 2, 3]))
        assert profile.cold_misses == 3
        assert profile.distances == []

    def test_immediate_reuse_distance_zero(self):
        profile = reuse_profile(stream([1, 1]))
        assert profile.distances == [0]

    def test_stack_distance_counts_distinct_blocks(self):
        # 1, 2, 3, 1 -> reuse of 1 after touching {2, 3}: distance 2.
        profile = reuse_profile(stream([1, 2, 3, 1]))
        assert profile.distances == [2]

    def test_repeated_intermediate_blocks_counted_once(self):
        # 1, 2, 2, 2, 1 -> distance 1 (only block 2 in between).
        profile = reuse_profile(stream([1, 2, 2, 2, 1]))
        assert profile.distances[-1] == 1

    def test_lru_hit_rate_matches_simulation(self):
        import random

        from repro.mem.cache import Cache

        rng = random.Random(0)
        blocks = [rng.randrange(64) for _ in range(3000)]
        profile = reuse_profile(stream(blocks))
        # A fully associative LRU cache of 32 lines:
        cache = Cache(32 * 64, 32)
        for block in blocks:
            cache.access_and_fill(block)
        assert profile.hit_rate_at(32) == pytest.approx(cache.stats.hit_rate, abs=0.01)

    def test_miss_ratio_curve_monotone(self):
        import random

        rng = random.Random(1)
        profile = reuse_profile(stream([rng.randrange(200) for _ in range(2000)]))
        curve = profile.miss_ratio_curve([1, 8, 64, 512])
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates, reverse=True)

    def test_counter_granularity(self):
        # Blocks 0 and 100 share one MorphCtr line; at shift 7 the second
        # access is a reuse, at shift 0 it is cold.
        accesses = stream([0, 100])
        assert reuse_profile(accesses, granularity_shift=7).distances == [0]
        assert reuse_profile(accesses).cold_misses == 2

    def test_median_distance(self):
        profile = reuse_profile(stream([1, 2, 1, 2, 1]))
        assert profile.median_distance() == 1
        assert reuse_profile(stream([1, 2])).median_distance() is None


class TestCharacterize:
    def test_sequential_stream(self):
        result = characterize(stream(list(range(500))))
        assert result.sequential_fraction > 0.95
        assert result.distinct_blocks == 500
        assert not result.is_irregular

    def test_random_stream_is_irregular(self):
        import random

        rng = random.Random(2)
        result = characterize(stream([rng.randrange(10_000) for _ in range(3000)]))
        assert result.sequential_fraction < 0.1
        assert result.is_irregular

    def test_write_fraction(self):
        result = characterize(stream([1, 2, 3, 4], writes={0, 1}))
        assert result.write_fraction == 0.5

    def test_skewed_popularity(self):
        blocks = [0] * 900 + list(range(1, 101))
        result = characterize(stream(blocks))
        assert result.top1pct_block_share > 0.8

    def test_entropy_flat_vs_skewed(self):
        flat = characterize(stream(list(range(256))))
        skewed = characterize(stream([0] * 255 + [1]))
        assert flat.entropy_bits > skewed.entropy_bits

    def test_empty_trace(self):
        result = characterize([])
        assert result == TraceCharacterization(0, 0, 0.0, 0.0, 0.0, 0.0)


class TestWorkingSetAndPopularity:
    def test_working_set_curve_windows(self):
        curve = working_set_curve(stream([1, 2, 1, 3, 4, 4]), window=3)
        assert curve == [(3, 2), (6, 2)]  # windows {1,2,1} and {3,4,4}

    def test_ctr_line_popularity_grouping(self):
        counts = ctr_line_popularity(stream([0, 1, 127, 128, 300]), blocks_per_ctr=128)
        assert counts[0] == 3
        assert counts[1] == 1
        assert counts[2] == 1

    def test_graph_trace_is_irregular(self, dfs_trace):
        result = characterize(dfs_trace.accesses)
        assert result.is_irregular

    def test_ml_trace_is_regular(self):
        from repro.workloads.ml import generate_ml_trace

        trace = generate_ml_trace("vgg", num_cores=1, max_accesses=5000, scale=0.01)
        result = characterize(trace.accesses)
        assert result.sequential_fraction > 0.8
        assert not result.is_irregular
