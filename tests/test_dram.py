"""Unit tests for the DDR4 timing model."""

from repro.mem.dram import DramModel, DramTimings


def test_row_hit_cheaper_than_miss():
    timings = DramTimings()
    assert timings.row_hit_latency < timings.row_miss_latency


def test_first_access_is_row_miss():
    dram = DramModel()
    latency = dram.request(0)
    assert latency == dram.timings.row_miss_latency + dram.timings.queue_penalty
    assert dram.stats.row_misses == 1


def test_same_row_hits():
    dram = DramModel()
    dram.request(0)
    # Same bank, same row: the very next block in that bank.
    latency = dram.request(dram.num_banks)  # block 16 -> bank 0, same row
    assert dram.stats.row_hits == 1
    assert latency == dram.timings.row_hit_latency + dram.timings.queue_penalty


def test_row_conflict_misses():
    dram = DramModel()
    rows_apart = dram.row_size_bytes // 64 * dram.num_banks
    dram.request(0)
    dram.request(rows_apart)  # same bank, different row
    assert dram.stats.row_misses == 2


def test_reads_writes_counted():
    dram = DramModel()
    dram.request(0)
    dram.request(1, is_write=True)
    assert dram.stats.reads == 1
    assert dram.stats.writes == 1
    assert dram.stats.requests == 2


def test_streaming_has_high_row_hit_rate():
    dram = DramModel()
    for block in range(512):
        dram.request(block)
    assert dram.stats.row_hit_rate > 0.8


def test_random_has_low_row_hit_rate():
    import random

    rng = random.Random(0)
    dram = DramModel()
    for _ in range(512):
        dram.request(rng.randrange(1 << 24))
    assert dram.stats.row_hit_rate < 0.2


def test_average_latency_when_idle_defaults_to_worst():
    dram = DramModel()
    assert dram.average_latency() == float(
        dram.timings.row_miss_latency + dram.timings.queue_penalty
    )


def test_multi_channel_interleaves_rows():
    dram = DramModel(num_channels=2)
    row_blocks = dram.row_size_bytes // 64
    dram.request(0)                      # channel 0
    dram.request(row_blocks)             # next row chunk -> channel 1
    assert dram.stats.per_channel == {0: 1, 1: 1}


def test_single_channel_uses_channel_zero():
    dram = DramModel()
    for block in range(0, 4096, 64):
        dram.request(block)
    assert set(dram.stats.per_channel) == {0}


def test_invalid_channels():
    import pytest

    with pytest.raises(ValueError):
        DramModel(num_channels=0)


def test_channels_have_private_row_buffers():
    dram = DramModel(num_channels=2)
    row_blocks = dram.row_size_bytes // 64
    dram.request(0)              # opens a row on channel 0
    dram.request(row_blocks)     # opens a row on channel 1
    latency = dram.request(1)    # back to channel 0: its row is still open
    assert latency == dram.timings.row_hit_latency + dram.timings.queue_penalty


def test_reset_clears_state():
    dram = DramModel()
    dram.request(0)
    dram.reset()
    assert dram.stats.requests == 0
    latency = dram.request(0)
    assert latency == dram.timings.row_miss_latency + dram.timings.queue_penalty
