"""Unit tests for the DDR4 bank-state timing model."""

import random

import pytest

from repro.mem.dram import DramModel, DramTimings


# ----------------------------------------------------------------------
# Timing parameters
# ----------------------------------------------------------------------
def test_row_hit_cheaper_than_miss():
    timings = DramTimings()
    assert timings.row_hit_latency < timings.row_miss_latency


def test_write_column_latency_cheaper_than_read():
    timings = DramTimings()
    assert timings.write_hit_latency < timings.row_hit_latency
    assert timings.write_miss_latency < timings.row_miss_latency


# ----------------------------------------------------------------------
# Row-buffer state machine
# ----------------------------------------------------------------------
def test_first_access_is_row_miss():
    dram = DramModel()
    latency = dram.request(0)
    assert latency == dram.timings.row_miss_latency
    assert dram.stats.row_misses == 1


def test_same_row_hits():
    dram = DramModel()
    first = dram.request(0, now=0)
    # Same channel, bank and row: a nearby column, issued after the bank
    # finished the first request.
    latency = dram.request(16, now=first + 1)
    assert dram.stats.row_hits == 1
    assert latency == dram.timings.row_hit_latency


def test_row_conflict_misses():
    dram = DramModel()
    rows_apart = dram.row_size_bytes // 64 * dram.num_banks
    dram.request(0)
    dram.request(rows_apart)  # same bank, different row
    assert dram.stats.row_misses == 2


def test_reads_writes_counted():
    dram = DramModel()
    dram.request(0)
    dram.request(1, is_write=True)
    assert dram.stats.reads == 1
    assert dram.stats.writes == 1
    assert dram.stats.requests == 2


def test_streaming_has_high_row_hit_rate():
    dram = DramModel()
    now = 0
    for block in range(512):
        now += 1 + dram.request(block, now=now)
    assert dram.stats.row_hit_rate > 0.8


def test_random_has_low_row_hit_rate():
    rng = random.Random(0)
    dram = DramModel()
    now = 0
    for _ in range(512):
        now += 1 + dram.request(rng.randrange(1 << 24), now=now)
    assert dram.stats.row_hit_rate < 0.2


# ----------------------------------------------------------------------
# Bank-level parallelism and write timing
# ----------------------------------------------------------------------
def test_independent_banks_overlap():
    bank_stride = DramModel().row_size_bytes // 64
    overlap = DramModel()
    overlap.request(0, now=0)
    # Different bank, issued at the same cycle: only the data bursts
    # serialise, so the second request costs one extra burst, not a
    # second full activate.
    overlapped = overlap.request(bank_stride, now=0)
    conflict = DramModel()
    conflict.request(0, now=0)
    # Same bank, different row: queues behind the whole first request.
    conflicted = conflict.request(bank_stride * conflict.num_banks, now=0)
    assert overlapped == overlap.timings.row_miss_latency + overlap.timings.burst
    assert conflicted == 2 * conflict.timings.row_miss_latency
    assert overlapped < conflicted


def test_write_uses_write_timing():
    dram = DramModel()
    latency = dram.request(0, is_write=True)
    # First write on an idle channel pays the write-class activate +
    # column latency only: the bus has been idle long enough that the
    # direction switch cannot delay the burst, so no turnaround.
    assert latency == dram.timings.write_miss_latency
    assert dram.stats.turnarounds == 0
    assert dram.stats.write_cycles == latency
    assert dram.stats.read_cycles == 0


def test_write_recovery_delays_same_bank_access():
    dram = DramModel()
    wlat = dram.request(0, is_write=True, now=0)
    # A read to the same bank right after the write's data burst must
    # wait out tWR before its column read; the direction switch is fully
    # absorbed by that bank wait, so it is not charged or counted.
    rlat = dram.request(1, now=wlat + 1)
    assert rlat > dram.timings.row_hit_latency
    assert dram.stats.turnarounds == 0


def test_average_latency_split_by_class():
    dram = DramModel()
    rlat = dram.request(0, now=0)
    wlat = dram.request(1, is_write=True, now=1000)
    assert dram.average_read_latency() == float(rlat)
    assert dram.average_write_latency() == float(wlat)
    assert dram.average_latency() == (rlat + wlat) / 2


def test_average_latency_when_idle_defaults_to_worst():
    dram = DramModel()
    # Regression (calibration PR): the overall idle fallback is the mean
    # of the two per-class fallbacks, not silently the read one.
    assert dram.average_latency() == (
        dram.timings.row_miss_latency + dram.timings.write_miss_latency
    ) / 2.0
    assert dram.average_read_latency() == float(dram.timings.row_miss_latency)
    assert dram.average_write_latency() == float(dram.timings.write_miss_latency)
    assert (
        dram.timings.write_miss_latency
        < dram.average_latency()
        < dram.timings.row_miss_latency
    )


# ----------------------------------------------------------------------
# Utilisation-derived queueing
# ----------------------------------------------------------------------
def test_queue_penalty_tracks_utilisation():
    idle = DramModel()
    idle.request(0, now=0)
    baseline = idle.request(1, now=200)
    assert baseline == idle.timings.row_hit_latency  # idle window: no penalty

    loaded = DramModel()
    row_blocks = loaded.row_size_bytes // 64
    for bank in range(loaded.num_banks):  # open row 0 in every bank
        loaded.request(bank * row_blocks, now=0)
    # Stream one burst every `burst` cycles round-robin across the open
    # rows: the data bus runs at ~full utilisation through the window,
    # while each individual bank stays comfortably ahead.
    for k in range(128):
        bank = k % loaded.num_banks
        column = 1 + k // loaded.num_banks
        loaded.request(bank * row_blocks + column, now=300 + 8 * k)
    # Probe after the stream drained: no bank or bus wait remains, so any
    # latency above a bare row hit is the utilisation-derived penalty.
    busy = loaded.request(2, now=1400)
    assert baseline < busy <= baseline + loaded.timings.queue_penalty
    assert loaded.stats.queue_cycles > 0


def test_background_occupancy_raises_queue_penalty():
    """Regression: re-encryption storms must drive the queue penalty.

    Background bursts used to count toward ``per_channel_busy`` but not
    the utilisation window, so a channel saturated by re-encryption
    charged demand requests nothing.
    """
    quiet = DramModel()
    stormy = DramModel()
    for dram in (quiet, stormy):
        dram.request(0, now=0)
    stormy.add_background_occupancy(200)  # 1600 busy cycles this window
    quiet_lat = quiet.request(1, now=2048)
    stormy_lat = stormy.request(1, now=2048)
    assert quiet_lat == quiet.timings.row_hit_latency
    assert stormy_lat > quiet_lat
    assert stormy_lat <= quiet_lat + stormy.timings.queue_penalty
    # Occupancy ledger is charged exactly once (the verify invariant).
    assert stormy.stats.per_channel_busy[0] == (
        (stormy.stats.requests + stormy.stats.background_requests)
        * stormy.timings.burst
    )


def test_turnaround_absorbed_by_bank_wait_not_charged():
    """Regression: a switch hidden behind tWR delays nothing, costs nothing."""
    dram = DramModel()
    wlat = dram.request(0, is_write=True, now=0)
    rlat = dram.request(1, now=wlat)  # same bank row hit, queues on tWR
    assert dram.stats.turnarounds == 0
    expected_finish = (wlat + dram.timings.wr) + dram.timings.row_hit_latency
    assert rlat == expected_finish - wlat


def test_turnaround_charged_in_bus_grant_order_when_delaying():
    """Regression: a flip whose burst chases the previous one pays the gap."""
    dram = DramModel()
    bank_stride = dram.row_size_bytes // 64
    dram.request(0, now=0)  # read burst holds the bus until cycle 131
    lat = dram.request(bank_stride, is_write=True, now=0)  # independent bank
    assert dram.stats.turnarounds == 1
    assert lat == (
        dram.timings.row_miss_latency
        + dram.timings.turnaround
        + dram.timings.burst
    )


def test_turnarounds_not_counted_at_issue_order():
    """Regression: program-order R/W alternation on one bank counts zero.

    The old accounting charged a turnaround on every issue-order flip;
    every one of these flips is absorbed by same-bank queueing (tWR or
    the column gap), so none may be charged or counted.
    """
    dram = DramModel()
    now = 0
    for i in range(16):
        now += 1 + dram.request(i % 4, is_write=(i % 2 == 1), now=now)
    assert dram.stats.turnarounds == 0
    assert dram.stats.reads == 8 and dram.stats.writes == 8


def test_decode_batch_matches_scalar_decode():
    """decode_batch shares module-level numpy (no per-call import)."""
    import repro.mem.dram as dram_mod

    assert hasattr(dram_mod, "np")
    dram = DramModel(num_channels=2, num_banks=4, row_size_bytes=512)
    blocks = [0, 1, 57, 1 << 20, (1 << 24) + 3]
    channels, banks, rows, columns = dram.decode_batch(blocks)
    for i, block in enumerate(blocks):
        assert (
            int(channels[i]), int(banks[i]), int(rows[i]), int(columns[i])
        ) == dram.decode(block)


# ----------------------------------------------------------------------
# Refresh
# ----------------------------------------------------------------------
def test_refresh_stalls_after_interval():
    dram = DramModel()
    dram.request(0, now=0)
    latency = dram.request(1, now=dram.timings.refresh_interval)
    assert dram.stats.refresh_stalls == 1
    assert latency == dram.timings.row_hit_latency + dram.timings.refresh_cycles


def test_refresh_disabled():
    dram = DramModel(timings=DramTimings(refresh_interval=0))
    dram.request(0, now=0)
    latency = dram.request(1, now=100_000)
    assert dram.stats.refresh_stalls == 0
    assert latency == dram.timings.row_hit_latency


# ----------------------------------------------------------------------
# Address decode / geometry
# ----------------------------------------------------------------------
def test_multi_channel_interleaves_rows():
    dram = DramModel(num_channels=2)
    row_blocks = dram.row_size_bytes // 64
    dram.request(0)                      # channel 0
    dram.request(row_blocks)             # next row chunk -> channel 1
    assert dram.stats.per_channel == {0: 1, 1: 1}


def test_single_channel_uses_channel_zero():
    dram = DramModel()
    for block in range(0, 4096, 64):
        dram.request(block)
    assert set(dram.stats.per_channel) == {0}


def test_channels_have_private_row_buffers():
    dram = DramModel(num_channels=2)
    row_blocks = dram.row_size_bytes // 64
    first = dram.request(0, now=0)        # opens a row on channel 0
    dram.request(row_blocks, now=0)       # opens a row on channel 1
    latency = dram.request(1, now=first + 1)  # channel 0's row still open
    assert latency == dram.timings.row_hit_latency


def test_decode_encode_round_trip():
    rng = random.Random(1)
    for channels, banks, row_bytes in ((1, 16, 2048), (2, 4, 512), (4, 8, 1024), (1, 1, 64)):
        dram = DramModel(num_channels=channels, num_banks=banks, row_size_bytes=row_bytes)
        for _ in range(200):
            block = rng.randrange(1 << 30)
            channel, bank, row, column = dram.decode(block)
            assert 0 <= channel < channels
            assert 0 <= bank < banks
            assert 0 <= column < row_bytes // 64
            assert dram.encode(channel, bank, row, column) == block


def test_decode_fields_target_distinct_geometry():
    dram = DramModel(num_channels=2, num_banks=4, row_size_bytes=512)
    address = dram.encode(channel=1, bank=2, row=5, column=3)
    assert dram.decode(address) == (1, 2, 5, 3)
    dram.request(address)
    assert dram.stats.per_channel == {1: 1}
    # Flipping exactly one decode field moves exactly that coordinate.
    assert dram.decode(dram.encode(0, 2, 5, 3))[0] == 0
    assert dram.decode(dram.encode(1, 3, 5, 3))[1] == 3
    assert dram.decode(dram.encode(1, 2, 6, 3))[2] == 6
    assert dram.decode(dram.encode(1, 2, 5, 4))[3] == 4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_channels": 0},
        {"num_channels": 3},
        {"num_banks": 0},
        {"num_banks": 12},
        {"row_size_bytes": 1000},
        {"row_size_bytes": 32},
    ],
)
def test_invalid_geometry_rejected(kwargs):
    with pytest.raises(ValueError):
        DramModel(**kwargs)


def test_minimal_geometry_accepted():
    dram = DramModel(num_channels=1, num_banks=1, row_size_bytes=64)
    latency = dram.request(5)
    assert latency == dram.timings.row_miss_latency
    assert dram.decode(5) == (0, 0, 5, 0)


# ----------------------------------------------------------------------
# Background occupancy and stats snapshots
# ----------------------------------------------------------------------
def test_background_occupancy_spreads_channels():
    dram = DramModel(num_channels=2)
    dram.add_background_occupancy(3)
    assert dram.stats.background_requests == 3
    busy = dram.stats.per_channel_busy
    assert sum(busy.values()) == 3 * dram.timings.burst
    assert set(busy) == {0, 1}
    assert dram.stats.requests == 0  # occupancy only, no demand request


def test_as_dict_includes_channel_balance():
    dram = DramModel(num_channels=2)
    dram.request(0)
    dram.request(dram.row_size_bytes // 64)
    snapshot = dram.stats.as_dict()
    assert snapshot["per_channel"] == {"0": 1, "1": 1}
    assert snapshot["per_channel_busy"] == {
        "0": dram.timings.burst, "1": dram.timings.burst
    }
    assert snapshot["read_cycles"] == dram.stats.read_cycles
    assert snapshot["turnarounds"] == dram.stats.turnarounds


# ----------------------------------------------------------------------
# Reset semantics
# ----------------------------------------------------------------------
def test_reset_clears_state():
    dram = DramModel()
    dram.request(0)
    dram.reset()
    assert dram.stats.requests == 0
    latency = dram.request(0)
    assert latency == dram.timings.row_miss_latency  # row buffer cleared


def test_reset_stats_keeps_open_rows():
    dram = DramModel()
    first = dram.request(0, now=0)
    dram.reset_stats()
    assert dram.stats.requests == 0
    latency = dram.request(1, now=first + 1)
    assert latency == dram.timings.row_hit_latency  # warm row survived
    assert dram.stats.row_hits == 1


# ----------------------------------------------------------------------
# RowHammer activation ledger
# ----------------------------------------------------------------------
def test_activation_ledger_counts_row_misses_only():
    dram = DramModel(timings=DramTimings(refresh_interval=0))
    row_blocks = dram.row_size_bytes // 64
    dram.request(0, now=0)                 # ACT row 0
    dram.request(1, now=0)                 # same row: hit, no ACT
    dram.request(row_blocks, now=0)        # ACT next chunk (another channel/bank/row)
    dram.request(0, now=0)
    channel, bank, row, _ = dram.decode(0)
    first_row_acts = dram.row_activations(channel, bank, row)
    total = sum(dram.activation_counts().values())
    assert total == dram.stats.activations == dram.stats.row_misses
    assert first_row_acts >= 1
    assert dram.stats.max_row_activations == max(dram.activation_counts().values())


def test_activation_ledger_resets_on_refresh_window():
    interval = 1000
    dram = DramModel(timings=DramTimings(refresh_interval=interval), num_banks=1)
    row_blocks = dram.row_size_bytes // 64
    # Two ACTs inside window 0 by alternating rows.
    dram.request(0, now=0)
    dram.request(row_blocks * dram.num_channels, now=0)
    assert sum(dram.activation_counts().values()) == 2
    # First request of window 3 clears the ledger and counts the reset.
    dram.request(0, now=3 * interval + 1)
    assert dram.stats.act_window_resets == 1
    assert sum(dram.activation_counts().values()) == 1
    # Lifetime activation count is unaffected by the reset.
    assert dram.stats.activations == 3


def test_activation_counts_filter_by_channel():
    dram = DramModel(timings=DramTimings(refresh_interval=0), num_channels=2)
    row_blocks = dram.row_size_bytes // 64
    dram.request(0, now=0)            # channel 0
    dram.request(row_blocks, now=0)   # channel 1
    all_counts = dram.activation_counts()
    ch0 = dram.activation_counts(channel=0)
    ch1 = dram.activation_counts(channel=1)
    assert set(all_counts) == set(ch0) | set(ch1)
    assert all(key[0] == 0 for key in ch0)
    assert all(key[0] == 1 for key in ch1)


def test_max_row_activations_tracks_hottest_row():
    dram = DramModel(timings=DramTimings(refresh_interval=0), num_banks=1,
                     num_channels=1)
    row_blocks = dram.row_size_bytes // 64
    for _ in range(5):                     # ping-pong two rows of one bank
        dram.request(0, now=0)
        dram.request(row_blocks, now=0)
    assert dram.stats.max_row_activations == 5
    assert dram.stats.as_dict()["max_row_activations"] == 5
