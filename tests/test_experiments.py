"""Smoke tests for the per-figure experiment harness (tiny settings).

These run every experiment function end-to-end on miniature traces; the
full-scale shape assertions live in ``benchmarks/``.
"""

import pytest

from repro.bench import experiments, runner


@pytest.fixture(autouse=True)
def tiny_experiments(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "4000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.05")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "traces")
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    yield
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()


def test_figure2_rows(capsys):
    rows = experiments.figure2(workloads=["dfs", "bfs"])
    assert len(rows) == 2
    assert all(0.0 <= row["ctr_miss_rate"] <= 1.0 for row in rows)
    assert "Figure 2" in capsys.readouterr().out


def test_figure3_rows():
    rows = experiments.figure3(workloads=["dfs"], sizes_kb=[8, 16], quiet=True)
    assert [row["ctr_cache_kb"] for row in rows] == [8, 16]
    assert rows[1]["dfs_miss"] <= rows[0]["dfs_miss"] + 0.05


def test_figure4_rows():
    rows = experiments.figure4(workloads=["dfs"], quiet=True)
    assert rows[0]["workload"] == "dfs"
    assert rows[0]["rw_traffic_ratio"] > 0


def test_figure5_rows():
    rows = experiments.figure5(quiet=True)
    assert [row["variant"] for row in rows][:2] == ["baseline-lru", "next_line"]
    assert len(rows) == 7


def test_figure8_series():
    rows = experiments.figure8(workloads=["bfs"], snapshots=2, quiet=True)
    assert rows[-1]["accesses"] >= rows[0]["accesses"]
    assert all(0.0 <= row["prediction_correctness"] <= 1.0 for row in rows)


def test_figure9_rows():
    rows = experiments.figure9(cet_sizes=[64, 256], quiet=True)
    assert rows[1]["good_locality_pct"] >= 0.0


def test_figure10_geomean_row():
    rows = experiments.figure10(workloads=["dfs"], quiet=True)
    assert rows[-1]["workload"] == "geomean"
    for design in ("morphctr", "cosmos-dp", "cosmos-cp", "cosmos"):
        assert 0.0 < rows[-1][design] <= 1.5


def test_figure11_rows():
    rows = experiments.figure11(workloads=["dfs"], quiet=True)
    assert set(rows[0]) == {"workload", "morphctr", "cosmos-dp", "cosmos-cp", "cosmos"}


def test_figure12_distribution_sums():
    rows = experiments.figure12(workloads=["dfs"], quiet=True)
    row = rows[0]
    total = (row["correct_on_chip"] + row["correct_off_chip"]
             + row["wrong_on_chip"] + row["wrong_off_chip"])
    assert total == pytest.approx(1.0, abs=1e-6)


def test_figure13_rows():
    rows = experiments.figure13(workloads=["dfs"], quiet=True)
    assert 0.0 <= rows[0]["cosmos_good_pct"] <= 100.0


def test_figure14_smat_positive():
    rows = experiments.figure14(workloads=["dfs"], quiet=True)
    for design in ("morphctr", "cosmos"):
        assert rows[0][design] > 0


def test_figure15_rows():
    rows = experiments.figure15(workloads=["dfs"], core_counts=[2], quiet=True)
    geomean = [row for row in rows if row["workload"] == "geomean"]
    assert len(geomean) == 1
    assert geomean[0]["cosmos_gain"] > 0


def test_figure16_rows():
    rows = experiments.figure16(workloads=["dfs"], quiet=True)
    assert rows[-1]["workload"] == "geomean"
    assert rows[-1]["emcc"] > 0


def test_figure17_rows():
    rows = experiments.figure17(workloads=["dlrm"], quiet=True)
    assert rows[0]["cosmos_gain"] > 0.5


def test_table1_rows():
    rows = experiments.table1(n_combinations=2, footprint_len=1500, quiet=True)
    assert rows[0]["stage"] == "stage1-best-hyper"
    assert rows[1]["alpha_d"] == 0.09  # the published values


def test_table2_rows():
    rows = experiments.table2(quiet=True)
    assert rows[-1]["component"] == "total"


def test_table4_rows():
    rows = experiments.table4(quiet=True)
    assert len(rows) == 8


def test_ablation_counter_schemes():
    rows = experiments.ablation_counter_schemes(quiet=True)
    assert {row["scheme"] for row in rows} == {"monolithic", "split", "morphctr"}


def test_ablation_mt_cache():
    rows = experiments.ablation_mt_cache(quiet=True)
    assert rows[0]["mt_cache_kb"] == 0
    assert rows[0]["mt_reads"] >= rows[-1]["mt_reads"]


def test_ablation_exploration():
    rows = experiments.ablation_exploration(quiet=True)
    assert len(rows) == 5


def test_ablation_hybrid():
    rows = experiments.ablation_hybrid(quiet=True)
    assert {row["design"] for row in rows} == {"morphctr", "emcc", "cosmos", "cosmos-early"}


def test_ablation_paging():
    rows = experiments.ablation_paging(quiet=True)
    assert {row["page_mapping"] for row in rows} == {"identity", "first_touch", "randomized"}


def test_generality_db():
    rows = experiments.generality_db(quiet=True)
    assert len(rows) == 3
    assert all(row["cosmos_gain"] > 0 for row in rows)


def test_ablation_lcr_policy():
    rows = experiments.ablation_lcr_policy(quiet=True)
    assert {row["policy"] for row in rows} == {
        "lru-plain", "lcr-literal", "lcr-score+aging", "lcr-recency+aging"
    }


def test_ablation_synergy():
    rows = experiments.ablation_synergy(quiet=True)
    by_name = {row["design"]: row for row in rows}
    assert by_name["synergy"]["mac_accesses"] == 0


def test_ablation_cpu_model():
    rows = experiments.ablation_cpu_model(quiet=True)
    assert len(rows) == 9
    assert all(row["cosmos_gain"] > 0 for row in rows)
