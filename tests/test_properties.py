"""Property-based tests (hypothesis) on the core data structures."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.cet import CtrEvaluationTable
from repro.core.hashing import hash_block, splitmix64
from repro.core.rl import Q_MAX, Q_MIN, QTable
from repro.mem.cache import Cache
from repro.mem.replacement import make_policy
from repro.secure.counters import MorphCtrCounters, SplitCounters
from repro.secure.layout import SecureLayout
from repro.secure.merkle import MerkleTree

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Cache invariants
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300),
    policy_name=st.sampled_from(["lru", "rrip", "ship", "mockingjay", "random"]),
)
def test_cache_never_exceeds_capacity_and_counts_add_up(blocks, policy_name):
    cache = Cache(8 * 64 * 2, 2, policy=make_policy(policy_name))
    for block in blocks:
        cache.access_and_fill(block)
    assert cache.occupancy <= cache.capacity_lines
    assert cache.stats.hits + cache.stats.misses == len(blocks)
    # Every set individually respects associativity.
    for index in range(cache.num_sets):
        assert len(cache.set_contents(index)) <= cache.assoc


@settings(max_examples=40, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
def test_cache_resident_block_always_hits(blocks):
    cache = Cache(64 * 64, 4)
    for block in blocks:
        cache.fill(block)
        assert cache.lookup(block)  # immediately after fill it is resident


# ----------------------------------------------------------------------
# Counter invariants
# ----------------------------------------------------------------------
@SLOW
@given(
    ops=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=400),
)
def test_morphctr_counter_values_never_repeat_per_block(ops):
    """AES-CTR security requires (PA, CTR) pairs never to repeat."""
    scheme = MorphCtrCounters()
    seen = {}
    for block in ops:
        scheme.increment(block)
        value = scheme.counter_value(block)
        assert value not in seen.setdefault(block, set())
        seen[block].add(value)


@SLOW
@given(ops=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=400))
def test_split_counter_values_never_repeat_per_block(ops):
    scheme = SplitCounters()
    seen = {}
    for block in ops:
        scheme.increment(block)
        value = scheme.counter_value(block)
        assert value not in seen.setdefault(block, set())
        seen[block].add(value)


@SLOW
@given(ops=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
def test_morphctr_line_always_representable(ops):
    """After any increment sequence, resident minors fit some format."""
    scheme = MorphCtrCounters()
    for block in ops:
        scheme.increment(block)
    for index in {scheme.ctr_index(block) for block in ops}:
        assert scheme.line_format(index) in ("uniform", "zcc")


# ----------------------------------------------------------------------
# Merkle-tree invariants
# ----------------------------------------------------------------------
@SLOW
@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.binary(min_size=1, max_size=16)),
        min_size=1,
        max_size=40,
    )
)
def test_merkle_verifies_latest_write_of_every_leaf(writes):
    tree = MerkleTree(64, arity=2)
    latest = {}
    for leaf, payload in writes:
        tree.update_leaf(leaf, payload)
        latest[leaf] = payload
    for leaf, payload in latest.items():
        assert tree.verify_leaf(leaf, payload)


@SLOW
@given(
    writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.binary(min_size=1, max_size=16)),
        min_size=2,
        max_size=30,
    )
)
def test_merkle_rejects_stale_payloads(writes):
    tree = MerkleTree(64, arity=4)
    history = {}
    for leaf, payload in writes:
        tree.update_leaf(leaf, payload)
        history.setdefault(leaf, []).append(payload)
    for leaf, payloads in history.items():
        for stale in payloads[:-1]:
            if stale != payloads[-1]:
                assert not tree.verify_leaf(leaf, stale)


# ----------------------------------------------------------------------
# Q-table invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=1),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=0.01, max_value=1.0),
            st.floats(min_value=0.0, max_value=0.99),
            st.floats(min_value=-127, max_value=127),
        ),
        max_size=200,
    )
)
def test_qtable_stays_clamped(updates):
    table = QTable(16, 2)
    for state, action, reward, alpha, gamma, bootstrap in updates:
        table.update(state, action, reward, alpha, gamma, bootstrap)
        assert Q_MIN <= table.q(state, action) <= Q_MAX
        assert table.best_action(state) in (0, 1)


# ----------------------------------------------------------------------
# CET invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    inserts=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300),
    capacity=st.integers(min_value=1, max_value=32),
)
def test_cet_capacity_and_index_consistency(inserts, capacity):
    cet = CtrEvaluationTable(capacity=capacity, radius=2)
    for block in inserts:
        cet.insert(block, state=block % 7, action=block % 2)
        assert len(cet) <= capacity
    # Every resident entry is probe-able; the spatial index agrees.
    head = cet.head
    assert head is not None
    assert cet.probe(head.ctr_block) is head


# ----------------------------------------------------------------------
# Hashing invariants
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_splitmix64_range(value):
    assert 0 <= splitmix64(value) < (1 << 64)


@settings(max_examples=100, deadline=None)
@given(
    block=st.integers(min_value=0, max_value=(1 << 48) - 1),
    num_states=st.sampled_from([64, 1024, 16384]),
)
def test_hash_block_in_range_and_deterministic(block, num_states):
    state = hash_block(block, num_states)
    assert 0 <= state < num_states
    assert hash_block(block, num_states) == state


# ----------------------------------------------------------------------
# Layout invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    data_blocks=st.integers(min_value=256, max_value=1 << 20),
    blocks_per_ctr=st.sampled_from([8, 64, 128]),
)
def test_layout_regions_are_disjoint_and_paths_valid(data_blocks, blocks_per_ctr):
    layout = SecureLayout(data_blocks=data_blocks, blocks_per_ctr=blocks_per_ctr)
    assert layout.ctr_region_base >= data_blocks
    assert layout.mac_region_base >= layout.ctr_region_base + layout.ctr_blocks
    ctr = layout.ctr_blocks - 1
    path = layout.mt_path(ctr)
    assert len(path) == max(layout.mt_levels - 1, 0)
    for address in path:
        assert address >= layout.mt_region_base
