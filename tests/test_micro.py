"""Tests for the controlled micro-workloads."""

import pytest

from repro.workloads.analysis import characterize
from repro.workloads.micro import (
    phased_trace,
    pointer_chase_trace,
    stream_trace,
    strided_trace,
    uniform_random_trace,
    zipf_trace,
)


class TestStream:
    def test_sequential(self):
        trace = stream_trace(n=100)
        blocks = [access.block_address for access in trace]
        assert blocks == list(range(blocks[0], blocks[0] + 100))

    def test_write_fraction(self):
        trace = stream_trace(n=2000, write_fraction=0.5, seed=1)
        assert 0.4 < trace.write_fraction < 0.6


class TestStrided:
    def test_stride_respected(self):
        trace = strided_trace(n=10, stride_bytes=256)
        deltas = {
            b.address - a.address
            for a, b in zip(trace.accesses, trace.accesses[1:])
        }
        assert deltas == {256}

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            strided_trace(stride_bytes=0)


class TestUniform:
    def test_footprint_bounded(self):
        trace = uniform_random_trace(n=5000, footprint_blocks=64)
        assert trace.footprint_blocks() <= 64

    def test_no_sequentiality(self):
        trace = uniform_random_trace(n=5000, footprint_blocks=1 << 16, seed=2)
        assert characterize(trace.accesses).sequential_fraction < 0.05

    def test_invalid_footprint(self):
        with pytest.raises(ValueError):
            uniform_random_trace(footprint_blocks=0)


class TestZipf:
    def test_alpha_zero_is_flat(self):
        flat = zipf_trace(n=8000, alpha=0.0, seed=3)
        skewed = zipf_trace(n=8000, alpha=1.5, seed=3)
        flat_share = characterize(flat.accesses).top1pct_block_share
        skewed_share = characterize(skewed.accesses).top1pct_block_share
        assert skewed_share > flat_share

    def test_higher_alpha_more_skew(self):
        mild = characterize(zipf_trace(n=8000, alpha=0.8, seed=4).accesses)
        heavy = characterize(zipf_trace(n=8000, alpha=2.0, seed=4).accesses)
        assert heavy.top1pct_block_share > mild.top1pct_block_share

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            zipf_trace(alpha=-1)

    def test_deterministic(self):
        a = zipf_trace(n=500, seed=5)
        b = zipf_trace(n=500, seed=5)
        assert [x.address for x in a] == [x.address for x in b]


class TestPointerChase:
    def test_follows_permutation_cycle(self):
        trace = pointer_chase_trace(n=1000, chain_blocks=64, seed=6)
        # A permutation cycle revisits blocks with a fixed period <= 64.
        blocks = [access.block_address for access in trace]
        assert blocks[0] in blocks[1:65]

    def test_no_spatial_locality(self):
        trace = pointer_chase_trace(n=3000, chain_blocks=1 << 14, seed=7)
        assert characterize(trace.accesses).sequential_fraction < 0.05

    def test_chain_too_short(self):
        with pytest.raises(ValueError):
            pointer_chase_trace(chain_blocks=1)


class TestPhased:
    def test_default_three_phases(self):
        trace = phased_trace(accesses_per_phase=500)
        assert len(trace) == 1500
        assert trace.metadata["phases"] == ["stream", "uniform", "zipf"]

    def test_phases_have_distinct_behaviour(self):
        trace = phased_trace(accesses_per_phase=2000, seed=8)
        first = characterize(trace.accesses[:2000])
        second = characterize(trace.accesses[2000:4000])
        assert first.sequential_fraction > 0.9
        assert second.sequential_fraction < 0.1

    def test_custom_phases(self):
        trace = phased_trace(phases=(stream_trace, stream_trace), accesses_per_phase=100)
        assert len(trace) == 200


def test_predictor_adapts_across_phases():
    """End-to-end: the data predictor rides out a phase change."""
    from repro.sim.config import small_test_config
    from repro.sim.simulator import simulate

    trace = phased_trace(accesses_per_phase=8000, seed=9)
    result = simulate("cosmos-dp", trace.accesses, small_test_config(), workload="phased")
    assert result.extra["prediction_accuracy"] > 0.5
