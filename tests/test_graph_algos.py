"""Unit tests for the graph kernel trace generators."""

import pytest

from repro.workloads.graph import preferential_attachment_graph
from repro.workloads.graph_algos import (
    GRAPH_WORKLOADS,
    available_kernels,
    generate_graph_trace,
)


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(500, edges_per_vertex=4, seed=11)


def test_all_paper_kernels_available():
    assert set(GRAPH_WORKLOADS) == {"dfs", "bfs", "gc", "pr", "tc", "cc", "sp", "dc"}
    assert set(available_kernels()) == set(GRAPH_WORKLOADS)


@pytest.mark.parametrize("kernel", GRAPH_WORKLOADS)
def test_every_kernel_generates_requested_length(kernel, graph):
    trace = generate_graph_trace(kernel, graph=graph, num_cores=2, max_accesses=4000)
    assert len(trace) == 4000
    assert trace.name == kernel


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        generate_graph_trace("kcore")


def test_multicore_interleaving(graph):
    trace = generate_graph_trace("bfs", graph=graph, num_cores=4, max_accesses=4000)
    counts = trace.core_counts()
    assert set(counts) == {0, 1, 2, 3}
    assert min(counts.values()) == max(counts.values())
    # Round-robin: the first four records come from four different cores.
    assert {access.core for access in trace.accesses[:4]} == {0, 1, 2, 3}


def test_deterministic_generation(graph):
    a = generate_graph_trace("dfs", graph=graph, num_cores=2, max_accesses=2000, seed=3)
    b = generate_graph_trace("dfs", graph=graph, num_cores=2, max_accesses=2000, seed=3)
    assert [x.address for x in a] == [x.address for x in b]


def test_seed_changes_trace(graph):
    a = generate_graph_trace("dfs", graph=graph, num_cores=1, max_accesses=2000, seed=3)
    b = generate_graph_trace("dfs", graph=graph, num_cores=1, max_accesses=2000, seed=4)
    assert [x.address for x in a] != [x.address for x in b]


def test_traces_mix_reads_and_writes(graph):
    for kernel in ("dfs", "bfs", "sp", "gc"):
        trace = generate_graph_trace(kernel, graph=graph, num_cores=1, max_accesses=3000)
        assert 0.0 < trace.write_fraction < 0.9, kernel


def test_metadata_recorded(graph):
    trace = generate_graph_trace("pr", graph=graph, num_cores=2, max_accesses=1000)
    assert trace.metadata["kernel"] == "pr"
    assert trace.metadata["vertices"] == graph.num_vertices
    assert trace.metadata["footprint_bytes"] > 0


def test_kernels_restart_to_fill_length(graph):
    # DC over 500 vertices produces a short pass; the driver must restart
    # the kernel to reach the requested length.
    trace = generate_graph_trace("dc", graph=graph, num_cores=1, max_accesses=50_000)
    assert len(trace) == 50_000


def test_irregularity_of_graph_traces(graph):
    """Graph traces must touch many distinct blocks (low spatial reuse)."""
    trace = generate_graph_trace("dfs", graph=graph, num_cores=1, max_accesses=5000)
    assert trace.footprint_blocks() > 800


def test_tc_emits_binary_search_probes(graph):
    trace = generate_graph_trace("tc", graph=graph, num_cores=1, max_accesses=5000)
    assert len(trace) == 5000  # enough adjacency probes to fill the budget
