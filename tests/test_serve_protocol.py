"""Wire-protocol tests: frame round-trips and malformed-input rejection."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import JobSpec, make_spec
from repro.serve import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    decode_frame,
    encode_frame,
    parse_address,
    parse_submit,
    ping_frame,
    stats_frame,
    submit_frame,
)
from repro.sim.config import small_test_config


def make_job(**overrides):
    base = dict(design="np", workload="dfs", config=small_test_config(),
                num_cores=1, trace_length=400, graph_scale=0.02)
    base.update(overrides)
    return JobSpec(**base)


# ----------------------------------------------------------------------
# Frame round-trips
# ----------------------------------------------------------------------
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=40),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)
frames = st.dictionaries(st.text(min_size=1, max_size=20), json_values,
                         min_size=1, max_size=6)


@settings(max_examples=50, deadline=None)
@given(frames)
def test_encode_decode_round_trip(frame):
    assert decode_frame(encode_frame(frame)) == frame


@settings(max_examples=50, deadline=None)
@given(frames)
def test_encoded_frames_are_single_lines(frame):
    data = encode_frame(frame)
    assert data.endswith(b"\n")
    assert data.count(b"\n") == 1  # NDJSON invariant: one frame, one line


def test_constructors_round_trip():
    for frame in (ping_frame(), stats_frame(),
                  submit_frame([make_job()], request_id="r1")):
        assert decode_frame(encode_frame(frame)) == frame
        assert frame["v"] == PROTOCOL_VERSION


# ----------------------------------------------------------------------
# Malformed input rejection
# ----------------------------------------------------------------------
def test_oversized_frame_rejected_both_directions():
    huge = {"blob": "x" * MAX_FRAME_BYTES}
    with pytest.raises(FrameError, match="exceeds"):
        encode_frame(huge)
    line = b'{"k": "' + b"y" * MAX_FRAME_BYTES + b'"}\n'
    with pytest.raises(FrameError, match="exceeds"):
        decode_frame(line)


def test_truncated_frame_rejected():
    with pytest.raises(FrameError, match="truncated"):
        decode_frame(b'{"type": "ping"')  # no newline: partial read


def test_garbage_rejected():
    with pytest.raises(FrameError, match="not JSON"):
        decode_frame(b"!!! not json at all\n")
    with pytest.raises(FrameError, match="not UTF-8"):
        decode_frame(b'\xff\xfe{"a":1}\n')
    with pytest.raises(FrameError, match="JSON object"):
        decode_frame(b"[1,2,3]\n")


def test_unserialisable_payload_rejected():
    with pytest.raises(FrameError, match="unserialisable"):
        encode_frame({"fn": object()})
    with pytest.raises(FrameError, match="unserialisable"):
        encode_frame({"x": float("nan")})  # NaN would not survive JSON


# ----------------------------------------------------------------------
# Spec wire format
# ----------------------------------------------------------------------
def test_spec_wire_round_trip_preserves_content_hash():
    spec = make_spec("cosmos", "dfs", config=small_test_config(), num_cores=2,
                     max_accesses=500, seed=7)
    rebuilt = JobSpec.from_wire(spec.to_wire())
    assert rebuilt.content_hash() == spec.content_hash()
    assert rebuilt.design == "cosmos" and rebuilt.seed == 7
    assert rebuilt.config == spec.config


def test_spec_wire_survives_json_transport():
    spec = make_job(seed=3)
    payload = json.loads(json.dumps(spec.to_wire()))
    assert JobSpec.from_wire(payload).content_hash() == spec.content_hash()


def test_spec_from_wire_rejects_bad_payloads():
    good = make_job().to_wire()
    with pytest.raises(ValueError, match="spec version"):
        JobSpec.from_wire({**good, "spec_version": 99})
    missing = dict(good)
    del missing["config"]
    with pytest.raises(ValueError):
        JobSpec.from_wire(missing)
    with pytest.raises(ValueError):
        JobSpec.from_wire({**good, "config": {**good["config"],
                                              "no_such_field": 1}})


# ----------------------------------------------------------------------
# Submit validation
# ----------------------------------------------------------------------
def test_parse_submit_round_trip():
    specs = [make_job(), make_job(design="cosmos")]
    parsed = parse_submit(submit_frame(specs, request_id="r"))
    assert [s.content_hash() for s in parsed] == \
        [s.content_hash() for s in specs]


def test_parse_submit_rejections():
    frame = submit_frame([make_job()], request_id="r")
    with pytest.raises(FrameError, match="version"):
        parse_submit({**frame, "v": 3})
    # v1 submits are still accepted — the v2 protocol is a strict superset.
    assert len(parse_submit({**frame, "v": 1})) == 1
    with pytest.raises(FrameError, match="specs"):
        parse_submit({**frame, "specs": []})
    with pytest.raises(FrameError, match="specs"):
        parse_submit({**frame, "specs": "nope"})
    with pytest.raises(FrameError):
        parse_submit({**frame, "specs": [{"bad": "spec"}]})


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------
def test_parse_address_forms():
    assert parse_address("example.org:9000") == ("example.org", 9000)
    assert parse_address("example.org") == ("example.org", 7911)
    assert parse_address(":9000") == ("127.0.0.1", 9000)
    assert parse_address("10.0.0.1:", default_port=123) == ("10.0.0.1", 123)
    with pytest.raises(ValueError, match="port"):
        parse_address("host:notaport")
