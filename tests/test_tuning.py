"""Unit tests for the hyperparameter/reward tuning flow (Sec. 4.5)."""

import pytest

from repro.core.config import CosmosConfig, Hyperparameters
from repro.core.tuning import (
    TuningReport,
    evaluate_configuration,
    extract_footprint,
    paper_configuration,
    tune_hyperparameters,
    tune_rewards,
)
from repro.mem.hierarchy import HierarchyConfig, LevelConfig


def small_hierarchy():
    return HierarchyConfig(
        num_cores=1,
        l1=LevelConfig(2 * 1024, 2, 2),
        l2=LevelConfig(8 * 1024, 4, 20),
        llc=LevelConfig(32 * 1024, 8, 128),
    )


@pytest.fixture(scope="module")
def footprint(dfs_trace_module=None):
    from repro.workloads.graph import preferential_attachment_graph
    from repro.workloads.graph_algos import generate_graph_trace

    graph = preferential_attachment_graph(600, edges_per_vertex=4, seed=3)
    trace = generate_graph_trace("dfs", graph=graph, num_cores=1, max_accesses=4000, seed=5)
    return extract_footprint(trace, hierarchy_config=small_hierarchy())


def test_footprint_records_every_access(footprint):
    assert len(footprint) == 4000
    block, l1_miss, needs_memory = footprint[0]
    assert isinstance(block, int)
    assert l1_miss and needs_memory  # cold start misses everywhere


def test_footprint_consistency(footprint):
    # needs_memory implies l1_miss (inclusive hierarchy).
    assert all(l1_miss or not needs_memory for _, l1_miss, needs_memory in footprint)


def test_evaluate_configuration_in_unit_range(footprint):
    config = CosmosConfig(num_states=1024, cet_entries=128, lcr_cache_bytes=4096)
    hit_rate = evaluate_configuration(footprint, config)
    assert 0.0 <= hit_rate <= 1.0


def test_evaluate_empty_footprint():
    assert evaluate_configuration([], CosmosConfig()) == 0.0


def test_tune_hyperparameters_returns_requested_count(footprint):
    report = tune_hyperparameters(footprint, n_combinations=4, seed=1,
                                  base_config=CosmosConfig(num_states=512, cet_entries=64,
                                                           lcr_cache_bytes=4096))
    assert len(report.outcomes) == 4
    assert report.best.hit_rate == max(o.hit_rate for o in report.outcomes)


def test_tune_hyperparameters_samples_valid_ranges(footprint):
    report = tune_hyperparameters(footprint, n_combinations=6, seed=2,
                                  base_config=CosmosConfig(num_states=512, cet_entries=64,
                                                           lcr_cache_bytes=4096))
    for outcome in report.outcomes:
        hyper = outcome.config.hyper
        assert 1e-3 <= hyper.alpha_d <= 1.0
        assert 1e-3 <= hyper.gamma_c <= 1.0
        assert 0.0 <= hyper.epsilon_d <= 1.0


def test_tune_rewards_respects_sign_ranges(footprint):
    report = tune_rewards(footprint, Hyperparameters(), n_combinations=5, seed=3,
                          base_config=CosmosConfig(num_states=512, cet_entries=64,
                                                   lcr_cache_bytes=4096))
    for outcome in report.outcomes:
        rewards = outcome.config.data_rewards
        assert rewards.r_hi >= 0 and rewards.r_mo >= 0
        assert rewards.r_ho <= -1 and rewards.r_mi <= -1
        ctr = outcome.config.ctr_rewards
        assert ctr.r_hg >= 0 and ctr.r_mb >= 0 and ctr.r_eb >= 0
        assert ctr.r_hb <= -1 and ctr.r_mg <= -1 and ctr.r_eg <= -1


def test_tuning_is_deterministic(footprint):
    base = CosmosConfig(num_states=512, cet_entries=64, lcr_cache_bytes=4096)
    a = tune_hyperparameters(footprint, n_combinations=3, seed=7, base_config=base)
    b = tune_hyperparameters(footprint, n_combinations=3, seed=7, base_config=base)
    assert [o.hit_rate for o in a.outcomes] == [o.hit_rate for o in b.outcomes]


def test_empty_report_raises():
    with pytest.raises(ValueError):
        TuningReport().best


def test_paper_configuration_matches_table1():
    config = paper_configuration()
    assert config.hyper.alpha_d == 0.09
    assert config.hyper.gamma_d == 0.88
    assert config.hyper.epsilon_d == 0.1
    assert config.hyper.alpha_c == 0.05
    assert config.hyper.gamma_c == 0.35
    assert config.hyper.epsilon_c == 0.001
    assert config.data_rewards.r_mo == 12
    assert config.data_rewards.r_mi == -30
    assert config.ctr_rewards.r_eb == 26
