"""Unit tests for the Merkle tree (functional) and the traversal model."""

import pytest

from repro.mem.cache import Cache
from repro.secure.layout import SecureLayout
from repro.secure.merkle import IntegrityTreeModel, MerkleTree


class TestFunctionalTree:
    def test_default_root_is_deterministic(self):
        assert MerkleTree(64).root == MerkleTree(64).root

    def test_update_changes_root(self):
        tree = MerkleTree(64)
        before = tree.root
        tree.update_leaf(3, b"counter line payload")
        assert tree.root != before

    def test_verify_after_update(self):
        tree = MerkleTree(64)
        tree.update_leaf(3, b"payload")
        assert tree.verify_leaf(3, b"payload")

    def test_verify_rejects_wrong_payload(self):
        tree = MerkleTree(64)
        tree.update_leaf(3, b"payload")
        assert not tree.verify_leaf(3, b"forged")

    def test_tampered_leaf_detected(self):
        tree = MerkleTree(64)
        tree.update_leaf(3, b"payload")
        tree.tamper_leaf(3, b"\x00" * 32)
        assert not tree.verify_leaf(3, b"payload")

    def test_tampered_internal_node_detected(self):
        tree = MerkleTree(64)
        tree.update_leaf(3, b"payload")
        tree.tamper_node(0, 3 // tree.arity, b"\x00" * 32)
        assert not tree.verify_leaf(3, b"payload")

    def test_replay_attack_detected(self):
        """Replaying an old (payload, leaf-digest) pair fails at the parent."""
        tree = MerkleTree(64)
        tree.update_leaf(3, b"version-1")
        import hashlib

        old_digest = hashlib.sha256(b"version-1").digest()
        tree.update_leaf(3, b"version-2")
        tree.tamper_leaf(3, old_digest)  # attacker restores the old leaf
        assert not tree.verify_leaf(3, b"version-1")

    def test_independent_leaves(self):
        tree = MerkleTree(64)
        tree.update_leaf(0, b"a")
        tree.update_leaf(63, b"b")
        assert tree.verify_leaf(0, b"a")
        assert tree.verify_leaf(63, b"b")

    def test_arity_8(self):
        tree = MerkleTree(64, arity=8)
        assert tree.levels == 2
        tree.update_leaf(9, b"x")
        assert tree.verify_leaf(9, b"x")

    def test_bounds(self):
        tree = MerkleTree(8)
        with pytest.raises(ValueError):
            tree.update_leaf(8, b"x")
        with pytest.raises(ValueError):
            MerkleTree(0)
        with pytest.raises(ValueError):
            MerkleTree(8, arity=1)


class TestTraversalModel:
    def layout(self):
        return SecureLayout(data_blocks=1 << 16, blocks_per_ctr=128)

    def test_cold_traversal_walks_to_root(self):
        model = IntegrityTreeModel(self.layout(), cache_size_bytes=0)
        fetched, addresses = model.traverse(0)
        assert fetched == len(self.layout().mt_path(0))
        assert model.stats.root_reached == 1

    def test_cached_nodes_stop_the_walk(self):
        model = IntegrityTreeModel(self.layout(), cache_size_bytes=64 * 1024)
        first, _ = model.traverse(0)
        second, _ = model.traverse(0)
        assert second == 0  # leaf parent now cached
        assert model.stats.cache_hits >= 1

    def test_sibling_benefits_from_shared_path(self):
        model = IntegrityTreeModel(self.layout(), cache_size_bytes=64 * 1024)
        model.traverse(0)
        fetched, _ = model.traverse(1)  # shares the whole parent chain
        assert fetched == 0

    def test_distant_counter_shares_only_top(self):
        layout = self.layout()
        model = IntegrityTreeModel(layout, cache_size_bytes=64 * 1024)
        cold, _ = model.traverse(0)
        # Counter 64 shares only the levels where its ancestor index
        # converges to 0 — the upper part of the tree.
        far, _ = model.traverse(64)
        assert 0 < far < cold

    def test_average_fetches_decreases_with_locality(self):
        layout = self.layout()
        model = IntegrityTreeModel(layout, cache_size_bytes=64 * 1024)
        for _ in range(4):
            for ctr in range(16):
                model.traverse(ctr)
        assert model.stats.average_fetches < len(layout.mt_path(0))

    def test_no_cache_always_counts_full_path(self):
        layout = self.layout()
        model = IntegrityTreeModel(layout, cache_size_bytes=0)
        for _ in range(3):
            model.traverse(5)
        assert model.stats.nodes_fetched == 3 * len(layout.mt_path(5))
