"""Unit tests for the CTR cache."""

from repro.core.lcr_cache import FLAG_BAD, FLAG_GOOD, LcrReplacementPolicy
from repro.secure.counters import MorphCtrCounters
from repro.secure.ctr_cache import CtrCache
from repro.secure.layout import SecureLayout


def make_ctr_cache(size=8 * 1024, policy=None):
    layout = SecureLayout(data_blocks=1 << 20, blocks_per_ctr=128)
    return CtrCache(layout, MorphCtrCounters(), size_bytes=size, assoc=4, policy=policy)


def test_blocks_sharing_a_counter_line_hit_together():
    cache = make_ctr_cache()
    assert not cache.access(0)  # miss fills the line covering blocks 0-127
    assert cache.access(127)
    assert not cache.access(128)  # next counter line


def test_miss_rate_accounting():
    cache = make_ctr_cache()
    cache.access(0)
    cache.access(0)
    cache.access(128)
    assert cache.stats.accesses == 3
    assert cache.stats.misses == 2
    assert abs(cache.miss_rate - 2 / 3) < 1e-9


def test_ctr_block_address_in_ctr_region():
    cache = make_ctr_cache()
    address = cache.ctr_block_address(0)
    assert address == cache.layout.ctr_region_base


def test_locality_tags_stored_on_lines():
    cache = make_ctr_cache(policy=LcrReplacementPolicy())
    cache.access(0, locality_flag=FLAG_GOOD, locality_score=42)
    line = cache.cache.get_line(cache.ctr_block_address(0))
    assert line.locality_flag == FLAG_GOOD
    assert line.locality_score == 42
    assert cache.stats.good_locality_tags == 1


def test_retag_on_reaccess():
    cache = make_ctr_cache(policy=LcrReplacementPolicy())
    cache.access(0, locality_flag=FLAG_GOOD, locality_score=40)
    cache.access(0, locality_flag=FLAG_BAD, locality_score=10)
    line = cache.cache.get_line(cache.ctr_block_address(0))
    assert line.locality_flag == FLAG_BAD
    assert cache.stats.bad_locality_tags == 1


def test_good_locality_fraction():
    cache = make_ctr_cache(policy=LcrReplacementPolicy())
    cache.access(0, locality_flag=FLAG_GOOD, locality_score=1)
    cache.access(128, locality_flag=FLAG_BAD, locality_score=1)
    cache.access(256, locality_flag=FLAG_BAD, locality_score=1)
    assert abs(cache.stats.good_locality_fraction - 1 / 3) < 1e-9


def test_untagged_accesses_not_counted_in_fraction():
    cache = make_ctr_cache()
    cache.access(0)
    assert cache.stats.good_locality_fraction == 0.0


def test_contains_probe():
    cache = make_ctr_cache()
    assert not cache.contains(0)
    cache.access(0)
    assert cache.contains(0)
    assert cache.contains(64)  # same counter line


def test_write_access_marks_line_dirty():
    written = []
    cache = make_ctr_cache(size=2 * 64 * 4)
    cache.cache.writeback_sink = written.append
    cache.access(0, is_write=True)
    # Thrash the set until the dirty counter line is evicted.
    for line_index in range(1, 4096):
        cache.access(line_index * 128)
    assert cache.ctr_block_address(0) in written
