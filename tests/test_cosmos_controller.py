"""Unit tests for the COSMOS controller and its variants (Table 4)."""

from repro.core.config import CosmosConfig
from repro.core.cosmos import CosmosController, CosmosVariant
from repro.core.lcr_cache import FLAG_BAD, FLAG_GOOD


def test_variant_names_match_table4():
    assert CosmosVariant.full().name == "cosmos"
    assert CosmosVariant.dp_only().name == "cosmos-dp"
    assert CosmosVariant.cp_only().name == "cosmos-cp"


def test_full_variant_has_both_predictors():
    controller = CosmosController()
    assert controller.location is not None
    assert controller.locality is not None


def test_dp_only_disables_locality():
    controller = CosmosController(variant=CosmosVariant.dp_only())
    assert controller.location is not None
    assert controller.locality is None
    assert controller.classify_ctr(5) == (None, None)


def test_cp_only_disables_location():
    controller = CosmosController(variant=CosmosVariant.cp_only())
    assert controller.location is None
    predicted_off, action, state = controller.on_l1_miss(5)
    assert predicted_off is False
    assert action is None and state is None


def test_cp_only_classifies():
    controller = CosmosController(variant=CosmosVariant.cp_only())
    flag, score = controller.classify_ctr(5)
    assert flag in (FLAG_GOOD, FLAG_BAD)
    assert isinstance(score, int)


def test_train_location_noop_when_disabled():
    controller = CosmosController(variant=CosmosVariant.cp_only())
    controller.train_location(None, None, on_chip=True)  # must not raise


def test_on_l1_miss_returns_consistent_tuple():
    controller = CosmosController(CosmosConfig(num_states=128))
    predicted_off, action, state = controller.on_l1_miss(77)
    assert isinstance(predicted_off, bool)
    assert action in (0, 1)
    assert 0 <= state < 128


def test_training_changes_policy_over_time():
    controller = CosmosController(CosmosConfig(num_states=64))
    for _ in range(300):
        predicted_off, action, state = controller.on_l1_miss(9)
        controller.train_location(state, action, on_chip=False)
    predicted_off, _, _ = controller.on_l1_miss(9)
    assert predicted_off  # learned that the block's region is off-chip
