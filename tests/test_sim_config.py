"""Tests for simulation configuration (Table 3 encoding and scaling)."""

import pytest

from repro.core.config import CosmosConfig, Hyperparameters
from repro.sim.config import CpuModel, SimulationConfig, scaled_paper_config


class TestDefaults:
    def test_table3_memory_parameters(self):
        config = SimulationConfig()
        assert config.memory_bytes == 32 * 1024**3  # 32 GB
        assert config.counter_scheme == "morphctr"

    def test_table3_engine_parameters(self):
        config = SimulationConfig()
        assert config.engine.ctr_cache_bytes == 512 * 1024
        assert config.engine.aes_latency == 40
        assert config.engine.auth_latency == 40
        assert config.engine.ctr_combine_latency == 1  # MorphCtr combination

    def test_table1_cosmos_parameters(self):
        config = SimulationConfig()
        hyper = config.cosmos.hyper
        assert (hyper.alpha_d, hyper.gamma_d, hyper.epsilon_d) == (0.09, 0.88, 0.1)
        assert (hyper.alpha_c, hyper.gamma_c, hyper.epsilon_c) == (0.05, 0.35, 0.001)

    def test_cpu_model_defaults(self):
        cpu = CpuModel()
        assert cpu.frequency_ghz == 3.0
        assert cpu.mlp_factor > 1.0


class TestScaling:
    def test_scale_preserves_ratios(self):
        config = scaled_paper_config(scale=16)
        llc = config.hierarchy.llc.size_bytes
        assert llc == 8 * 1024 * 1024 // 16
        # CTR cache keeps its 1/16-of-LLC ratio.
        assert config.engine.ctr_cache_bytes == llc // 16

    def test_scale_one_is_full_size(self):
        config = scaled_paper_config(scale=1)
        assert config.hierarchy.llc.size_bytes == 8 * 1024 * 1024
        assert config.engine.ctr_cache_bytes == 512 * 1024

    def test_floors_protect_tiny_scales(self):
        config = scaled_paper_config(scale=10_000)
        assert config.hierarchy.l1.size_bytes >= 2048
        assert config.engine.ctr_cache_bytes >= 4096

    def test_latencies_not_scaled(self):
        for scale in (1, 16, 64):
            config = scaled_paper_config(scale=scale)
            assert config.hierarchy.l1.latency == 2
            assert config.hierarchy.l2.latency == 20
            assert config.hierarchy.llc.latency == 128


class TestHyperparameterValidation:
    def test_rejects_out_of_range_alpha(self):
        with pytest.raises(ValueError):
            Hyperparameters(alpha_d=0.0)
        with pytest.raises(ValueError):
            Hyperparameters(gamma_c=1.5)

    def test_rejects_out_of_range_epsilon(self):
        with pytest.raises(ValueError):
            Hyperparameters(epsilon_d=-0.1)
        with pytest.raises(ValueError):
            Hyperparameters(epsilon_c=1.0001)


class TestCosmosConfigDefaults:
    def test_table2_structure_sizes(self):
        config = CosmosConfig()
        assert config.num_states == 16384
        assert config.cet_entries == 8192

    def test_lcr_cache_per_core_reading(self):
        # 128KB per core x 4 cores (see EXPERIMENTS.md interpretation #1).
        assert CosmosConfig().lcr_cache_bytes == 512 * 1024

    def test_with_cores_preserves_other_fields(self):
        base = scaled_paper_config(scale=16)
        eight = base.with_cores(8)
        assert eight.engine.ctr_cache_bytes == base.engine.ctr_cache_bytes
        assert eight.cosmos is base.cosmos
        assert eight.hierarchy.l1.size_bytes == base.hierarchy.l1.size_bytes
