"""Step-level checks of the paper's Algorithms 1-3 against our code.

Each test pins one line of the pseudo-code: which reward fires in which
situation, what gets bootstrapped, what the LCR victim is.  Reward values
come from Table 1.
"""

import pytest

from repro.core.config import CosmosConfig, Hyperparameters
from repro.core.lcr_cache import FLAG_BAD, FLAG_GOOD, LcrReplacementPolicy
from repro.core.locality_predictor import BAD_LOCALITY, GOOD_LOCALITY, CtrLocalityPredictor
from repro.core.location_predictor import OFF_CHIP, ON_CHIP, DataLocationPredictor
from repro.mem.replacement import CacheLine


def greedy_config(**kwargs):
    defaults = dict(num_states=512, cet_entries=8,
                    hyper=Hyperparameters(epsilon_d=0.0, epsilon_c=0.0))
    defaults.update(kwargs)
    return CosmosConfig(**defaults)


# ----------------------------------------------------------------------
# Algorithm 3 — data location prediction rewards (lines 8-18)
# ----------------------------------------------------------------------
class TestAlgorithm3Rewards:
    def test_r_hi_for_correct_on_chip(self):
        predictor = DataLocationPredictor(greedy_config())
        reward = predictor.train(state=0, action=ON_CHIP, actually_on_chip=True)
        assert reward == 9  # R_D_hi

    def test_r_ho_for_wrong_off_chip(self):
        predictor = DataLocationPredictor(greedy_config())
        reward = predictor.train(state=0, action=OFF_CHIP, actually_on_chip=True)
        assert reward == -20  # R_D_ho

    def test_r_mo_for_correct_off_chip(self):
        predictor = DataLocationPredictor(greedy_config())
        reward = predictor.train(state=0, action=OFF_CHIP, actually_on_chip=False)
        assert reward == 12  # R_D_mo

    def test_r_mi_for_wrong_on_chip(self):
        predictor = DataLocationPredictor(greedy_config())
        reward = predictor.train(state=0, action=ON_CHIP, actually_on_chip=False)
        assert reward == -30  # R_D_mi

    def test_line20_bootstrap_uses_actual_action(self):
        """Q(S,A) += alpha [R + gamma Q(S, a_actual) - Q(S,A)]."""
        predictor = DataLocationPredictor(greedy_config())
        # Pre-load Q(S, OFF_CHIP) so the bootstrap term is visible.
        predictor.q_table.update(0, OFF_CHIP, reward=50, alpha=1.0, gamma=0.0)
        bootstrap = predictor.q_table.q(0, OFF_CHIP)
        hyper = predictor.config.hyper
        before = predictor.q_table.q(0, ON_CHIP)
        predictor.train(state=0, action=ON_CHIP, actually_on_chip=False)
        expected = before + hyper.alpha_d * (-30 + hyper.gamma_d * bootstrap - before)
        assert predictor.q_table.q(0, ON_CHIP) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Algorithm 1 — CTR locality rewards (lines 9-23)
# ----------------------------------------------------------------------
class TestAlgorithm1Rewards:
    def outcomes(self, predictor):
        stats = predictor.stats
        return stats.cet_hits, stats.cet_misses, stats.cet_evictions

    def test_cet_miss_grades_bad_prediction_correct(self):
        predictor = CtrLocalityPredictor(greedy_config())
        predictor.predict(1000)  # first access: CET miss; greedy tie -> BAD
        assert predictor.stats.cet_misses == 1
        assert predictor.stats.rewarded_correct == 1  # R_C_mb case

    def test_cet_hit_grades_good_prediction_correct(self):
        predictor = CtrLocalityPredictor(greedy_config())
        # Drive the state's Q toward GOOD by repeated hits on one line.
        for _ in range(50):
            predictor.predict(7)
        before_correct = predictor.stats.rewarded_correct
        action, _ = predictor.predict(7)
        assert action == GOOD_LOCALITY
        assert predictor.stats.cet_hits >= 1
        assert predictor.stats.rewarded_correct == before_correct + 1  # R_C_hg

    def test_line9_nearby_radius(self):
        predictor = CtrLocalityPredictor(greedy_config())
        predictor.predict(100)
        predictor.predict(101)  # adjacent line: nearby CET hit (line 9)
        assert predictor.stats.cet_hits == 1
        predictor.predict(105)  # beyond the radius: miss
        assert predictor.stats.cet_misses == 2

    def test_lines_19_23_eviction_settles_reward(self):
        predictor = CtrLocalityPredictor(greedy_config(cet_entries=2))
        predictor.predict(0)
        state0 = predictor.state_of(0)
        q_bad_before = predictor.q_table.q(state0, BAD_LOCALITY)
        predictor.predict(500)
        predictor.predict(1000)  # evicts line 0 from the 2-entry CET
        assert predictor.stats.cet_evictions == 1
        # The evicted entry was predicted BAD, so R_C_eb (positive) applies.
        assert predictor.q_table.q(state0, BAD_LOCALITY) > q_bad_before

    def test_table1_ctr_reward_values(self):
        rewards = CosmosConfig().ctr_rewards
        assert (rewards.r_hg, rewards.r_hb) == (13, -12)
        assert (rewards.r_mg, rewards.r_mb) == (-16, 20)
        assert (rewards.r_eg, rewards.r_eb) == (-22, 26)


# ----------------------------------------------------------------------
# Algorithm 2 — LCR victim selection
# ----------------------------------------------------------------------
class TestAlgorithm2Victim:
    def line(self, tag, flag, score, tick):
        entry = CacheLine(tag)
        entry.locality_flag = flag
        entry.locality_score = score
        entry.lru_tick = tick
        return entry

    def test_lines_5_10_bad_highest_score_in_strict_mode(self):
        policy = LcrReplacementPolicy(aging=0, bad_selection="score")
        lines = [
            self.line(0, FLAG_GOOD, 90, 1),
            self.line(1, FLAG_BAD, 40, 2),
            self.line(2, FLAG_BAD, 70, 3),
        ]
        assert policy.victim(0, lines).tag == 2

    def test_lines_12_16_good_lowest_score_fallback(self):
        policy = LcrReplacementPolicy(aging=0, bad_selection="score")
        lines = [
            self.line(0, FLAG_GOOD, 90, 1),
            self.line(1, FLAG_GOOD, 10, 2),
            self.line(2, FLAG_GOOD, 50, 3),
        ]
        assert policy.victim(0, lines).tag == 1

    def test_bad_always_dominates_good(self):
        policy = LcrReplacementPolicy(aging=0)
        lines = [
            self.line(0, FLAG_GOOD, 1, 1),  # weakest good
            self.line(1, FLAG_BAD, 127, 2),
        ]
        assert policy.victim(0, lines).tag == 1
