"""Unit tests for JobSpec content hashing and spec resolution."""

from dataclasses import replace

import pytest

from repro.exec import JobSpec, canonical_config_dict, make_spec
from repro.sim.config import SimulationConfig, small_test_config


def make_job(**overrides):
    base = dict(
        design="morphctr",
        workload="dfs",
        config=small_test_config(),
        num_cores=1,
        trace_length=2000,
        graph_scale=0.05,
        seed=None,
    )
    base.update(overrides)
    return JobSpec(**base)


def test_hash_is_stable_across_equal_specs():
    # Two independently-built but identical specs must collide.
    assert make_job().content_hash() == make_job().content_hash()
    assert make_job(config=small_test_config()).content_hash() == make_job().content_hash()


def test_hash_is_hex_sha256():
    digest = make_job().content_hash()
    assert len(digest) == 64
    int(digest, 16)  # raises if not hex


@pytest.mark.parametrize("field,value", [
    ("design", "cosmos"),
    ("workload", "bfs"),
    ("num_cores", 4),
    ("trace_length", 4000),
    ("graph_scale", 0.1),
    ("seed", 7),
])
def test_hash_sensitive_to_every_spec_field(field, value):
    assert make_job(**{field: value}).content_hash() != make_job().content_hash()


def test_hash_sensitive_to_nested_config_changes():
    config = small_test_config()
    deeper = replace(config.cosmos, cet_entries=config.cosmos.cet_entries * 2)
    changed = SimulationConfig(
        hierarchy=config.hierarchy,
        memory_bytes=config.memory_bytes,
        counter_scheme=config.counter_scheme,
        engine=config.engine,
        cosmos=deeper,
        cpu=config.cpu,
    )
    assert make_job(config=changed).content_hash() != make_job().content_hash()


def test_canonical_config_dict_covers_all_fields():
    tree = canonical_config_dict(small_test_config())
    assert set(tree) == {"hierarchy", "memory_bytes", "counter_scheme",
                         "engine", "cosmos", "cpu"}
    assert tree["cosmos"]["hyper"]["alpha_d"] == pytest.approx(0.09)


def test_make_spec_resolves_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "1230")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.25")
    spec = make_spec("np", "dfs")
    assert spec.trace_length == 1230
    assert spec.graph_scale == 0.25
    assert spec.config is not None  # default config substituted

    # Resolution happens at creation: a later env change must not move the hash.
    digest = spec.content_hash()
    monkeypatch.setenv("REPRO_TRACE_LEN", "9999")
    assert spec.content_hash() == digest


def test_make_spec_explicit_arguments_win(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "1230")
    config = small_test_config()
    spec = make_spec("cosmos", "bfs", config=config, num_cores=2,
                     max_accesses=500, seed=11)
    assert spec.trace_length == 500
    assert spec.num_cores == 2
    assert spec.seed == 11
    assert spec.config is config
