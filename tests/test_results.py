"""Unit tests for SimulationResult metrics."""

import pytest

from repro.mem.stats import TrafficStats
from repro.sim.results import SimulationResult


def make_result(cycles=1000.0, instructions=2000, design="morphctr", **overrides):
    base = dict(
        design=design,
        workload="dfs",
        accesses=500,
        instructions=instructions,
        cycles=cycles,
        total_latency=4000,
        l1_miss_rate=0.4,
        l2_miss_rate=0.6,
        llc_miss_rate=0.9,
        ctr_miss_rate=0.8,
        traffic=TrafficStats(data_reads=100, mt_reads=300),
    )
    base.update(overrides)
    return SimulationResult(**base)


def test_ipc():
    assert make_result(cycles=1000, instructions=2000).ipc == 2.0
    assert make_result(cycles=0).ipc == 0.0


def test_average_latency():
    assert make_result().average_latency == 4000 / 500
    assert make_result(accesses=0).average_latency == 0.0


def test_speedup_and_normalization():
    fast = make_result(cycles=500)
    slow = make_result(cycles=1000)
    assert fast.speedup_over(slow) == 2.0
    assert slow.normalized_to(fast) == 0.5


def test_smat_uses_measured_miss_rates():
    result = make_result()
    value = result.smat(
        l1_latency=2, l2_latency=20, llc_latency=128, dram_latency=96,
        ctr_hit_latency=4, ctr_dram_latency=96, ctr_verify_latency=40,
    )
    lower_ctr = make_result(ctr_miss_rate=0.1).smat(
        l1_latency=2, l2_latency=20, llc_latency=128, dram_latency=96,
        ctr_hit_latency=4, ctr_dram_latency=96, ctr_verify_latency=40,
    )
    assert lower_ctr < value


def test_np_smat_has_no_ctr_term():
    np_result = make_result(design="np", ctr_miss_rate=0.0,
                            traffic=TrafficStats(data_reads=100))
    secure = make_result()
    kwargs = dict(
        l1_latency=2, l2_latency=20, llc_latency=128, dram_latency=96,
        ctr_hit_latency=4, ctr_dram_latency=96, ctr_verify_latency=40,
    )
    assert np_result.smat(**kwargs) < secure.smat(**kwargs)


def test_summary_flattens_extras():
    result = make_result()
    result.extra["prediction_accuracy"] = 0.8512345
    summary = result.summary()
    assert summary["design"] == "morphctr"
    assert summary["prediction_accuracy"] == pytest.approx(0.8512, abs=1e-4)
    assert summary["mt_reads"] == 300


def test_to_dict_from_dict_roundtrip_is_exact():
    result = make_result(
        cycles=12345.6789012345,  # full-precision float must survive
        traffic=TrafficStats(data_reads=100, data_writes=7, ctr_reads=3,
                             ctr_writes=2, mt_reads=300, mac_accesses=5,
                             reencryption_requests=1),
    )
    result.extra["prediction_accuracy"] = 0.8512345678901234
    restored = SimulationResult.from_dict(result.to_dict())
    assert restored == result  # dataclass equality: every field exact
    assert restored.cycles == result.cycles
    assert restored.traffic == result.traffic
    assert restored.extra == result.extra


def test_roundtrip_survives_json():
    import json

    result = make_result(cycles=1.0000000000000002)
    blob = json.dumps(result.to_dict())
    restored = SimulationResult.from_dict(json.loads(blob))
    assert restored == result


def test_from_dict_rejects_malformed_payload():
    with pytest.raises((KeyError, TypeError)):
        SimulationResult.from_dict({"design": "np"})
