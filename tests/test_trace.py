"""Unit tests for the trace container and helpers."""

import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.workloads.trace import ALLOC_ALIGN, Allocator, Trace, interleave, reads_and_writes


class TestAllocator:
    def test_alloc_is_page_aligned(self):
        allocator = Allocator()
        for size in (1, 100, 5000):
            base = allocator.alloc(f"r{size}", size)
            assert base % ALLOC_ALIGN == 0

    def test_regions_do_not_overlap(self):
        allocator = Allocator()
        a = allocator.alloc("a", 10_000)
        b = allocator.alloc("b", 10_000)
        assert b >= a + 10_000

    def test_footprint_tracks_allocations(self):
        allocator = Allocator()
        allocator.alloc("a", 4096)
        allocator.alloc("b", 1)
        assert allocator.footprint_bytes == 2 * 4096

    def test_rejects_empty_allocation(self):
        with pytest.raises(ValueError):
            Allocator().alloc("x", 0)

    def test_regions_recorded(self):
        allocator = Allocator()
        base = allocator.alloc("data", 128)
        assert allocator.regions["data"] == (base, 128)


class TestTrace:
    def trace(self):
        accesses = [
            MemoryAccess(0, AccessType.READ, 0),
            MemoryAccess(64, AccessType.WRITE, 1),
            MemoryAccess(0, AccessType.READ, 0),
        ]
        return Trace("t", accesses)

    def test_len_and_iter(self):
        trace = self.trace()
        assert len(trace) == 3
        assert [access.address for access in trace] == [0, 64, 0]

    def test_write_fraction(self):
        assert self.trace().write_fraction == pytest.approx(1 / 3)
        assert Trace("empty").write_fraction == 0.0

    def test_footprint_blocks(self):
        assert self.trace().footprint_blocks() == 2

    def test_truncated(self):
        short = self.trace().truncated(2)
        assert len(short) == 2
        assert short.name == "t"

    def test_core_counts(self):
        assert self.trace().core_counts() == {0: 2, 1: 1}


class TestInterleave:
    def test_round_robin_order(self):
        a = [MemoryAccess(0, core=0), MemoryAccess(1, core=0)]
        b = [MemoryAccess(100, core=1), MemoryAccess(101, core=1)]
        merged = interleave([a, b])
        assert [access.address for access in merged] == [0, 100, 1, 101]

    def test_uneven_streams(self):
        a = [MemoryAccess(0), MemoryAccess(1), MemoryAccess(2)]
        b = [MemoryAccess(100)]
        merged = interleave([a, b])
        assert [access.address for access in merged] == [0, 100, 1, 2]

    def test_empty_input(self):
        assert interleave([]) == []
        assert interleave([[], []]) == []


def test_reads_and_writes_builder():
    accesses = reads_and_writes([(0, False), (64, True)], core=2)
    assert accesses[0].type == AccessType.READ
    assert accesses[1].type == AccessType.WRITE
    assert all(access.core == 2 for access in accesses)
