"""Property tests for the DRAM row-activation ledger (RowHammer accounting).

Three laws, checked against a trivial reference model:

* **Monotone within a window** — a row's count never decreases until its
  channel's refresh window rolls over.
* **Reset at tREFI boundaries** — the ledger clears exactly when a
  request lands in a later window, and ``act_window_resets`` counts it.
* **Pure function of the request stream** — replaying the same
  ``(block, is_write, now)`` sequence into a fresh model reproduces the
  ledger and stats byte for byte; and the three simulation dispatch
  paths (arrays / objects / batched), which issue the identical request
  sequence, leave byte-identical DRAM stats behind.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.dram import DramModel, DramTimings


def _model(refresh_interval=0, num_banks=4, num_channels=2):
    return DramModel(
        timings=DramTimings(refresh_interval=refresh_interval),
        num_banks=num_banks,
        num_channels=num_channels,
        row_size_bytes=256,
    )


_requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 12) - 1),  # block address
        st.booleans(),                                      # is_write
        st.integers(min_value=0, max_value=60),             # now increment
    ),
    min_size=1,
    max_size=120,
)


def _reference_counts(model, stream):
    """Independent open-page reference: activations per (ch, bank, row),
    windowed per channel by ``now // refresh_interval``."""
    interval = model.timings.refresh_interval
    open_rows = {}
    windows = {}
    counts = {}
    resets = 0
    max_count = 0
    for block, _, now in stream:
        channel, bank, row, _ = model.decode(block)
        if interval > 0:
            window = now // interval
            if window != windows.get(channel, 0):
                windows[channel] = window
                channel_keys = [k for k in counts if k[0] == channel]
                if channel_keys:
                    resets += 1
                    for key in channel_keys:
                        del counts[key]
        if open_rows.get((channel, bank)) != row:
            open_rows[(channel, bank)] = row
            key = (channel, bank, row)
            counts[key] = counts.get(key, 0) + 1
            max_count = max(max_count, counts[key])
    return counts, resets, max_count


@settings(max_examples=40, deadline=None)
@given(stream=_requests)
def test_ledger_matches_reference_without_refresh(stream):
    model = _model(refresh_interval=0)
    now = 0
    for block, is_write, step in stream:
        now += step
        model.request(block, is_write, now=now)
    expected, resets, max_count = _reference_counts(
        model, [(b, w, 0) for b, w, _ in stream]
    )
    assert model.activation_counts() == expected
    assert model.stats.act_window_resets == resets == 0
    assert model.stats.max_row_activations == max_count
    assert model.stats.activations == sum(expected.values())


@settings(max_examples=40, deadline=None)
@given(stream=_requests, interval=st.sampled_from([64, 256, 1024]))
def test_ledger_resets_at_window_boundaries(stream, interval):
    model = _model(refresh_interval=interval)
    now = 0
    timed = []
    for block, is_write, step in stream:
        now += step
        timed.append((block, is_write, now))
        model.request(block, is_write, now=now)
    expected, resets, max_count = _reference_counts(model, timed)
    assert model.activation_counts() == expected
    assert model.stats.act_window_resets == resets
    assert model.stats.max_row_activations == max_count
    # Total activations (row misses) are never lost to a reset.
    assert model.stats.activations >= sum(expected.values())


@settings(max_examples=40, deadline=None)
@given(stream=_requests)
def test_ledger_is_monotone_within_a_window(stream):
    model = _model(refresh_interval=0)
    seen = {}
    now = 0
    for block, is_write, step in stream:
        now += step
        model.request(block, is_write, now=now)
        counts = model.activation_counts()
        for key, count in seen.items():
            assert counts.get(key, 0) >= count, f"count of {key} decreased"
        seen = counts


@settings(max_examples=25, deadline=None)
@given(stream=_requests, interval=st.sampled_from([0, 128]))
def test_ledger_is_pure_function_of_stream(stream, interval):
    first = _model(refresh_interval=interval)
    second = _model(refresh_interval=interval)
    now = 0
    for block, is_write, step in stream:
        now += step
        first.request(block, is_write, now=now)
        second.request(block, is_write, now=now)
    assert first.activation_counts() == second.activation_counts()
    assert first.stats.as_dict() == second.stats.as_dict()


def test_ledger_survives_reset_stats_but_not_reset():
    model = _model(refresh_interval=0)
    for block in (0, 64, 0, 64):
        model.request(block, now=0)
    assert model.activation_counts()
    model.reset_stats()
    # Counter state is *timing* state: reset_stats only zeroes metrics.
    assert model.activation_counts()
    assert model.stats.max_row_activations == 0
    model.reset()
    assert model.activation_counts() == {}


def test_dram_stats_dict_exposes_ledger_metrics():
    model = _model()
    model.request(0, now=0)
    payload = model.stats.as_dict()
    for key in ("activations", "act_window_resets", "max_row_activations"):
        assert key in payload


def test_dram_stats_identical_across_dispatch_paths():
    """arrays / objects / batched issue the same DRAM request sequence."""
    from repro.sim.config import small_test_config
    from repro.sim.simulator import Simulator, build_design
    from repro.workloads.hammer import generate_hammer_trace

    trace = generate_hammer_trace("hammer-double", num_cores=2, max_accesses=1500)
    config = small_test_config(num_cores=2)
    dumps = {}
    ledgers = {}
    for path in ("arrays", "objects", "batched"):
        design = build_design("cosmos", config)
        Simulator(design, config, "hammer-double").run(trace, path=path)
        dumps[path] = design.engine.dram.stats.as_dict()
        ledgers[path] = design.engine.dram.activation_counts()
    assert dumps["arrays"] == dumps["objects"] == dumps["batched"]
    assert ledgers["arrays"] == ledgers["objects"] == ledgers["batched"]
    assert dumps["arrays"]["activations"] > 0
