"""Figure 13: %CTR accesses classified good locality (COSMOS vs COSMOS-CP)."""

from repro.bench.experiments import figure13


def test_figure13_early_point_sees_more_good_locality(run_once):
    rows = run_once(figure13)
    assert len(rows) == 8
    higher = sum(
        1 for row in rows if row["cosmos_good_pct"] >= row["cosmos_cp_good_pct"]
    )
    # Paper shape: the post-L1 stream (full COSMOS) contains far more
    # good-locality CTR accesses than the post-LLC stream (COSMOS-CP).
    assert higher >= 6
    cp_mean = sum(row["cosmos_cp_good_pct"] for row in rows) / len(rows)
    full_mean = sum(row["cosmos_good_pct"] for row in rows) / len(rows)
    assert full_mean > cp_mean
