"""Figure 14: Secure Memory Access Time across the designs (Eq. 1-2)."""

from repro.bench.experiments import figure14
from repro.bench.report import geometric_mean


def test_figure14_cosmos_has_lowest_smat(run_once):
    rows = run_once(figure14)
    mean = {
        design: geometric_mean([row[design] for row in rows])
        for design in ("morphctr", "cosmos-cp", "cosmos-dp", "cosmos")
    }
    # Paper shape: COSMOS achieves the lowest SMAT of all configurations.
    assert mean["cosmos"] <= min(mean["morphctr"], mean["cosmos-cp"]) + 1e-9
    assert mean["cosmos"] < mean["morphctr"]
