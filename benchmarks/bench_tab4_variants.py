"""Table 4: every design variation exercised on one workload."""

from repro.bench.experiments import table4


def test_table4_design_matrix(run_once):
    rows = run_once(table4)
    designs = {row["design"] for row in rows}
    assert designs == {
        "np", "morphctr", "early", "emcc", "rmcc",
        "cosmos-dp", "cosmos-cp", "cosmos",
    }
    by_name = {row["design"]: row for row in rows}
    # NP is the fastest; every protected design carries CTR state.
    assert by_name["np"]["ipc"] >= max(
        row["ipc"] for row in rows if row["design"] != "np"
    )
    assert by_name["np"]["ctr_miss_rate"] == 0.0
