"""Figure 11: CTR cache miss rate across MorphCtr and the COSMOS variants."""

from repro.bench.experiments import figure11
from repro.bench.report import geometric_mean


def test_figure11_full_cosmos_has_lowest_miss_rate(run_once):
    rows = run_once(figure11)
    mean = {
        design: geometric_mean([max(row[design], 1e-6) for row in rows])
        for design in ("morphctr", "cosmos-dp", "cosmos-cp", "cosmos")
    }
    # Paper shape: the full design sits below COSMOS-DP (the LCR cache and
    # locality tags add on top of early access).
    assert mean["cosmos"] < mean["cosmos-dp"] + 0.01
    assert mean["cosmos"] < mean["morphctr"]
