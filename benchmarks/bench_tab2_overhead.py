"""Table 2: COSMOS storage/area/power overhead."""

from repro.bench.experiments import table2
from repro.core.overhead import compute_overhead


def test_table2_storage_overhead(run_once):
    rows = run_once(table2)
    assert rows[-1]["component"] == "total"
    report = compute_overhead()
    # Paper reports 147KB; our first-principles arithmetic lands nearby
    # (the difference is the paper's LCR line-overhead row, see
    # EXPERIMENTS.md).
    assert 125 < report.total_kilobytes < 150
    assert 0.01 < report.fraction_of_llc() < 0.025
