"""Ablation (extension): COSMOS + EMCC-style universal early probing."""

from repro.bench.experiments import ablation_hybrid


def test_ablation_hybrid_design(run_once):
    rows = run_once(ablation_hybrid)
    by_name = {row["design"]: row for row in rows}
    # The hybrid warms the counter cache with on-chip traffic, so its CTR
    # miss rate must not exceed plain COSMOS's by much...
    assert by_name["cosmos-early"]["ctr_miss_rate"] <= by_name["cosmos"]["ctr_miss_rate"] + 0.05
    # ...at the price of extra Merkle-tree traffic.
    assert by_name["cosmos-early"]["mt_reads"] >= by_name["cosmos"]["mt_reads"] * 0.9
    # Both COSMOS variants beat the baseline.
    assert by_name["cosmos-early"]["normalized_perf"] > by_name["morphctr"]["normalized_perf"]
