"""Hot-path throughput: accesses/sec per design on the fixed Zipf trace.

Unlike the figure/table benchmarks this one tracks the *simulator itself*:
it runs :func:`repro.bench.perf.run_benchmark` once and writes the
``BENCH_hotpath.json`` report next to the current directory, so CI can
archive throughput over time.  Run standalone via::

    python -m repro.bench.perf [--profile DESIGN]
"""

from pathlib import Path

from repro.bench.perf import DEFAULT_DESIGNS, run_benchmark, write_report


def test_hotpath_throughput(run_once):
    payload = run_once(run_benchmark)
    write_report(payload, Path("BENCH_hotpath.json"))
    results = payload["results"]
    assert set(results) == set(DEFAULT_DESIGNS)
    for entry in results.values():
        assert entry["accesses"] > 0
        assert entry["accesses_per_sec"] > 0
    # The unprotected design does strictly less work per access than the
    # secure ones; if it is not the fastest, timing is broken.
    assert (
        payload["results"]["np"]["accesses_per_sec"]
        >= payload["results"]["cosmos"]["accesses_per_sec"]
    )


if __name__ == "__main__":  # pragma: no cover
    from repro.bench.perf import main

    raise SystemExit(main())
