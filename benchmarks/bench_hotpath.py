"""Hot-path throughput: accesses/sec per design on the fixed Zipf trace.

Unlike the figure/table benchmarks this one tracks the *simulator itself*:
it runs :func:`repro.bench.perf.run_benchmark` once and writes the
``BENCH_hotpath.json`` report next to the current directory, so CI can
archive throughput over time.  Run standalone via::

    python -m repro.bench.perf [--profile DESIGN]

``REPRO_PERF_GATE=1`` additionally asserts the measured throughput stays
within 3% of the committed ``BENCH_hotpath.json`` baseline — the
observability layer's zero-overhead-when-off budget.  Off by default
because shared CI runners are too noisy to gate on.
"""

import json
import os
from pathlib import Path

from repro.bench.history import HISTORY_FILENAME, append_history
from repro.bench.perf import (
    DEFAULT_DESIGNS,
    measure_dram,
    measure_serve,
    run_benchmark,
    write_report,
)

#: Allowed obs-disabled throughput regression vs. the committed baseline.
PERF_BUDGET = 0.03

#: The committed baseline (repo root, one level above this file).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _load_baseline() -> dict:
    # Snapshot at import: test_hotpath_throughput rewrites the report in
    # the current directory (the repo root when pytest runs from there),
    # and the gate must compare against the *committed* numbers, not a
    # fresh sample from the same session.
    try:
        return json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError):
        return {}


BASELINE = _load_baseline()


#: Dispatch paths measured per design: the scalar arrays loop (bare
#: design name in the report) and the epoch-batched kernel (``@batched``
#: keys).  Both feed the same ≤3% gate, so a batched-kernel regression
#: fails CI exactly like a scalar one.
BENCH_PATHS = ("arrays", "batched")


def test_hotpath_throughput(run_once):
    payload = run_once(lambda **kw: run_benchmark(paths=BENCH_PATHS, **kw))
    write_report(payload, Path("BENCH_hotpath.json"))
    # Longitudinal record for the perf observatory (`repro obs bench-trend`):
    # the snapshot above catches step regressions, the history catches drift.
    append_history(payload, Path(HISTORY_FILENAME))
    results = payload["results"]
    expected = {
        name if path == "arrays" else f"{name}@{path}"
        for name in DEFAULT_DESIGNS
        for path in BENCH_PATHS
    }
    assert set(results) == expected
    for entry in results.values():
        assert entry["accesses"] > 0
        assert entry["accesses_per_sec"] > 0
    # The unprotected design does strictly less work per access than the
    # secure ones; if it is not the fastest, timing is broken.
    assert (
        payload["results"]["np"]["accesses_per_sec"]
        >= payload["results"]["cosmos"]["accesses_per_sec"]
    )
    # Every path is metric-identical by contract — the riders in the
    # report must agree between the scalar and batched entries.
    for name in DEFAULT_DESIGNS:
        scalar, batched = results[name], results[f"{name}@batched"]
        for key in ("accesses", "cycles", "total_latency", "ctr_miss_rate"):
            assert scalar[key] == batched[key], (
                f"{name}: {key} diverges between arrays and batched paths"
            )
    if os.environ.get("REPRO_PERF_GATE") and BASELINE:
        baseline = BASELINE.get("results", {})
        for name, entry in results.items():
            reference = baseline.get(name, {}).get("accesses_per_sec")
            if not reference:
                continue
            floor = reference * (1.0 - PERF_BUDGET)
            assert entry["accesses_per_sec"] >= floor, (
                f"{name}: {entry['accesses_per_sec']:,.0f} acc/s is more than "
                f"{PERF_BUDGET:.0%} below the committed baseline "
                f"({reference:,.0f} acc/s)"
            )


def test_dram_microbench(run_once):
    """Bare ``DramModel.request`` throughput — the innermost hot-path call.

    Sanity-checks the bank-state model's behaviour on the seeded mixed
    stream (row hits from the sequential runs, honest per-class averages)
    and, under ``REPRO_PERF_GATE=1``, holds its throughput to the same
    ≤3% budget against the committed baseline's ``dram_microbench`` entry.
    """
    entry = run_once(measure_dram)
    assert entry["requests"] > 0
    assert entry["requests_per_sec"] > 0
    # Sequential runs inside rows must produce some row-buffer hits, and
    # writes (tCWL < tCL) must average cheaper service than reads unless
    # queueing dominates — both are direction checks, not tight bounds.
    assert 0.0 < entry["row_hit_rate"] < 1.0
    assert entry["avg_read_latency"] > 0
    assert entry["avg_write_latency"] > 0
    if os.environ.get("REPRO_PERF_GATE") and BASELINE:
        baseline = BASELINE.get("dram_microbench", {})
        reference = baseline.get("requests_per_sec")
        if reference:
            floor = reference * (1.0 - PERF_BUDGET)
            assert entry["requests_per_sec"] >= floor, (
                f"dram: {entry['requests_per_sec']:,.0f} req/s is more than "
                f"{PERF_BUDGET:.0%} below the committed baseline "
                f"({reference:,.0f} req/s)"
            )


def test_serve_microbench(run_once):
    """Experiment-service cache-hit fast path — requests/second over TCP.

    A warm repeated submit must be answered from the result cache without
    touching the worker pool (``jobs_executed`` stays at the warm-up
    count), and the round-trip rate must clear the 500 req/s floor the
    service promises for cache hits.  The floor is absolute, not
    baseline-relative: socket round-trip times swing far more than the
    ±3% simulator budget run-to-run, so a relative gate would only
    measure scheduler noise.
    """
    entry = run_once(measure_serve)
    assert entry["requests"] > 0
    assert entry["jobs_executed"] == entry["warm_specs"], (
        "timed phase leaked onto a worker — not measuring the fast path"
    )
    assert entry["requests_per_sec"] >= 500, (
        f"serve fast path {entry['requests_per_sec']:,.0f} req/s is below "
        f"the 500 req/s cache-hit floor"
    )


if __name__ == "__main__":  # pragma: no cover
    from repro.bench.perf import main

    raise SystemExit(main())
