"""Ablation: epsilon-greedy exploration rate of the data predictor."""

from repro.bench.experiments import ablation_exploration


def test_ablation_exploration_rate(run_once):
    rows = run_once(ablation_exploration)
    by_epsilon = {row["epsilon_d"]: row for row in rows}
    # Heavy exploration (60% random actions) must cost accuracy compared
    # with the tuned 10% (paper Table 1).
    assert by_epsilon[0.6]["prediction_accuracy"] < by_epsilon[0.1]["prediction_accuracy"]
