"""Figure 17: regular (ML inference) workloads."""

from repro.bench.experiments import figure17
from repro.bench.report import geometric_mean


def test_figure17_no_regression_small_gain(run_once):
    rows = run_once(figure17)
    assert len(rows) == 6
    gains = [row["cosmos_gain"] for row in rows]
    # Paper shape: COSMOS never regresses on regular workloads...
    assert all(gain > 0.97 for gain in gains)
    # ...and the average gain is modest (paper ~3%), far below the ~25%
    # seen on irregular workloads.
    mean_gain = geometric_mean(gains)
    assert 0.99 < mean_gain < 1.20
