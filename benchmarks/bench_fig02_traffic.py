"""Figure 2: memory traffic and CTR miss rate, NP vs secure (MorphCtr)."""

from repro.bench.experiments import figure2


def test_figure2_traffic_breakdown(run_once):
    rows = run_once(figure2)
    assert len(rows) == 8  # one per graph workload
    for row in rows:
        # Secure memory multiplies traffic, with MT reads the largest share.
        assert row["secure_traffic"] > 1.5
        assert row["mt_frac"] > row["reenc_frac"]
        assert row["ctr_miss_rate"] > 0.3
    # Paper shape: MT reads dominate on the majority of graph workloads.
    dominated = sum(1 for row in rows if row["mt_frac"] > 0.4)
    assert dominated >= 5
