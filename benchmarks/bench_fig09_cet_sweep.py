"""Figure 9: CET size vs %good-locality tags and LCR-CTR miss rate."""

from repro.bench.experiments import figure9


def test_figure9_cet_design_space(run_once):
    rows = run_once(figure9)
    good = [row["good_locality_pct"] for row in rows]
    miss = [row["lcr_miss_rate"] for row in rows]
    # Larger CETs classify more CTR accesses as good locality.
    assert good[-1] > good[0]
    # The miss rate improves from the smallest CET to the sweet spot; the
    # curve is non-monotonic overall (too much tagged good stops helping).
    assert min(miss) < miss[0]
    best_index = miss.index(min(miss))
    assert best_index > 0
