"""Benchmark-suite configuration.

Each benchmark reproduces one of the paper's tables or figures: it runs the
corresponding experiment exactly once (``benchmark.pedantic`` with a single
round — these are minutes-long simulations, not microbenchmarks) and prints
the rows the paper reports.  Environment knobs:

    REPRO_TRACE_LEN=250000   accesses per trace
    REPRO_QUICK=1            5x shorter traces for smoke runs
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
