"""Figure 3: CTR cache capacity sweep vs miss rate (DFS, PR, GC)."""

from repro.bench.experiments import figure3


def test_figure3_limited_gains_from_capacity(run_once):
    rows = run_once(figure3)
    assert [row["ctr_cache_kb"] for row in rows] == [8, 16, 32, 64, 128]
    for workload in ("dfs", "pr", "gc"):
        series = [row[f"{workload}_miss"] for row in rows]
        # Bigger caches never hurt...
        assert series[-1] <= series[0] + 0.02
        # ...but 16x more capacity still leaves a high miss rate: the CTR
        # stream at the LLC point is cold (paper Sec. 3.2.1).
        assert series[-1] > 0.25
