"""Ablation: Merkle-tree node cache capacity vs MT read traffic."""

from repro.bench.experiments import ablation_mt_cache


def test_ablation_mt_cache_collapses_traffic(run_once):
    rows = run_once(ablation_mt_cache)
    mt_reads = [row["mt_reads"] for row in rows]
    # No cache (first row) pays the full leaf-to-root walk every miss; a
    # modest cache removes the shared upper levels.
    assert mt_reads[0] > 2 * mt_reads[-1]
    # Traffic is monotone non-increasing in cache size (allowing noise).
    for smaller, larger in zip(mt_reads, mt_reads[1:]):
        assert larger <= smaller * 1.05
