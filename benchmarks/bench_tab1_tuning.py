"""Table 1: two-stage hyperparameter and reward tuning (random search)."""

from repro.bench.experiments import table1


def test_table1_tuning_flow(run_once):
    rows = run_once(table1)
    assert rows[0]["stage"] == "stage1-best-hyper"
    assert rows[1]["stage"] == "paper-table1-hyper"
    # Stage-1's winner found a configuration with a usable LCR hit rate.
    assert 0.0 <= rows[0]["lcr_hit_rate"] <= 1.0
    # Stage-2 rewards never score worse than 0 and the search is seeded.
    assert 0.0 <= rows[2]["lcr_hit_rate"] <= 1.0
