"""Ablation (methodology): sensitivity to the IPC-proxy constants."""

from repro.bench.experiments import ablation_cpu_model


def test_ablation_cpu_model_robustness(run_once):
    rows = run_once(ablation_cpu_model)
    assert len(rows) == 9  # 3 MLP factors x 3 bandwidth costs
    # The headline conclusion must hold at every corner of the sweep.
    for row in rows:
        assert row["cosmos_gain"] > 1.0
