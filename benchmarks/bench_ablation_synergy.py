"""Ablation (extension): COSMOS composed with Synergy-style MAC-in-ECC."""

from repro.bench.experiments import ablation_synergy


def test_ablation_synergy_composition(run_once):
    rows = run_once(ablation_synergy)
    by_name = {row["design"]: row for row in rows}
    # MAC-in-ECC removes every MAC DRAM access.
    assert by_name["synergy"]["mac_accesses"] == 0
    assert by_name["cosmos-synergy"]["mac_accesses"] == 0
    assert by_name["morphctr"]["mac_accesses"] > 0
    # The optimisations compose: each layer helps.
    assert by_name["synergy"]["normalized_perf"] >= by_name["morphctr"]["normalized_perf"]
    assert by_name["cosmos-synergy"]["normalized_perf"] >= by_name["cosmos"]["normalized_perf"]
    assert (
        by_name["cosmos-synergy"]["normalized_perf"]
        > by_name["morphctr"]["normalized_perf"]
    )
