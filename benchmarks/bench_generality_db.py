"""Generality (extension): database kernels COSMOS was never tuned on."""

from repro.bench.experiments import generality_db


def test_generality_database_kernels(run_once):
    rows = run_once(generality_db)
    assert {row["workload"] for row in rows} == {"hashjoin", "btree", "ycsb"}
    for row in rows:
        # No regression on any untuned domain...
        assert row["cosmos_gain"] > 0.97
    # ...and the irregular kernels see a real gain.
    assert max(row["cosmos_gain"] for row in rows) > 1.03
