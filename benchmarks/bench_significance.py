"""Statistical significance of the headline gain across generator seeds."""

from repro.bench.stats import compare_over_seeds


def test_cosmos_gain_is_significant_across_seeds(run_once):
    comparison = run_once(
        compare_over_seeds, "cosmos", "morphctr", "dfs", seeds=(1, 2, 3)
    )
    summary = comparison.summary()
    print(f"\nspeedups per seed: {[round(s, 3) for s in comparison.speedups]}")
    print(f"mean {summary.mean:.3f}, 95% CI +/- {summary.ci_halfwidth:.3f}")
    # The gain must exceed run-to-run noise: CI strictly above 1.0.
    assert comparison.significant_gain
