"""Figure 15: COSMOS vs MorphCtr at 4 and 8 cores."""

from repro.bench.experiments import figure15


def test_figure15_gains_scale_with_cores(run_once):
    rows = run_once(figure15)
    means = {row["cores"]: row["cosmos_gain"] for row in rows if row["workload"] == "geomean"}
    assert set(means) == {4, 8}
    # Paper shape: the gain persists when scaling to 8 cores (25% -> 26%).
    assert means[4] > 1.08
    assert means[8] > 1.08
    assert abs(means[8] - means[4]) < 0.15  # consistent, not collapsing
