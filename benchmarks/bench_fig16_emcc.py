"""Figure 16: COSMOS vs EMCC (and RMCC), normalised to NP."""

from repro.bench.experiments import figure16


def test_figure16_cosmos_beats_emcc(run_once):
    rows = run_once(figure16)
    geomean = rows[-1]
    assert geomean["workload"] == "geomean"
    # Paper shape: MorphCtr < EMCC < COSMOS; RMCC comparable to EMCC.
    assert geomean["emcc"] > geomean["morphctr"]
    assert geomean["cosmos"] > geomean["emcc"]
    assert geomean["rmcc"] > geomean["morphctr"] * 0.98
