"""Figure 12: data-location prediction distribution and accuracy."""

from repro.bench.experiments import figure12


def test_figure12_prediction_quality(run_once):
    rows = run_once(figure12)
    assert len(rows) == 8
    for row in rows:
        total = (
            row["correct_on_chip"] + row["correct_off_chip"]
            + row["wrong_on_chip"] + row["wrong_off_chip"]
        )
        assert abs(total - 1.0) < 1e-6
    accuracies = [row["accuracy"] for row in rows]
    # Paper: ~85% average accuracy; our traces land in the same band.
    assert sum(accuracies) / len(accuracies) > 0.6
    assert max(accuracies) > 0.75
