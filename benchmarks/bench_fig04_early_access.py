"""Figure 4: CTR access after L1 miss vs after LLC miss."""

from repro.bench.experiments import figure4


def test_figure4_early_access_improves_ctr_locality(run_once):
    rows = run_once(figure4)
    assert len(rows) == 8
    improved = sum(1 for row in rows if row["miss_after_l1"] <= row["miss_after_llc"] + 0.01)
    # Early access lowers (or at worst matches) the CTR miss rate on the
    # vast majority of graph workloads (paper: -25% on average).
    assert improved >= 6
    for row in rows:
        # Read/write traffic grows only modestly from the extra CTR fetches.
        assert row["rw_traffic_ratio"] < 1.6
