"""Figure 8: online-learning convergence on BFS (graph) vs MLP (non-graph)."""

from repro.bench.experiments import figure8


def test_figure8_rl_adapts_online(run_once):
    rows = run_once(figure8)
    bfs = [row for row in rows if row["workload"] == "bfs"]
    mlp = [row for row in rows if row["workload"] == "mlp"]
    assert bfs and mlp
    # BFS (same domain the hyperparameters were tuned on) converges high.
    assert bfs[-1]["prediction_correctness"] > 0.6
    # MLP was never seen during tuning but online learning still improves
    # or sustains correctness over the run (paper: keeps rising past 70%).
    assert mlp[-1]["prediction_correctness"] >= mlp[0]["prediction_correctness"] - 0.05
    assert mlp[-1]["prediction_correctness"] > 0.5
