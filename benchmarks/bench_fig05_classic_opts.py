"""Figure 5: classic prefetchers/replacement policies on the CTR cache."""

from repro.bench.experiments import figure5


def test_figure5_classic_optimizations_do_not_help(run_once):
    rows = run_once(figure5)
    baseline = rows[0]
    assert baseline["variant"] == "baseline-lru"
    for row in rows[1:]:
        # Paper shape: neither prefetching nor smart replacement moves the
        # needle — no variant beats plain LRU by a meaningful margin.
        assert row["ipc_vs_lru"] < 1.05
        assert row["ctr_miss_rate"] > baseline["ctr_miss_rate"] - 0.10
    prefetchers = [row for row in rows if row["variant"] in ("next_line", "stride", "berti")]
    # Inaccurate prefetches add integrity-check traffic.
    assert any(row["dram_requests"] >= baseline["dram_requests"] for row in prefetchers)
