"""Ablation: counter organisation (monolithic vs split vs MorphCtr)."""

from repro.bench.experiments import ablation_counter_schemes


def test_ablation_counter_density(run_once):
    rows = run_once(ablation_counter_schemes)
    by_name = {row["scheme"]: row for row in rows}
    # Denser counter lines cover more data, so they cache better: the CTR
    # miss rate ordering follows coverage (mono 1:8 > split 1:64 > 1:128).
    assert by_name["morphctr"]["ctr_miss_rate"] <= by_name["split"]["ctr_miss_rate"] + 0.02
    assert by_name["split"]["ctr_miss_rate"] <= by_name["monolithic"]["ctr_miss_rate"] + 0.02
