"""Figure 10: headline performance, normalised to non-protected memory."""

from repro.bench.experiments import figure10


def test_figure10_cosmos_beats_morphctr(run_once):
    rows = run_once(figure10)
    geomean = rows[-1]
    assert geomean["workload"] == "geomean"
    base = geomean["morphctr"]
    dp = geomean["cosmos-dp"]
    cp = geomean["cosmos-cp"]
    full = geomean["cosmos"]
    # Paper shape: full COSMOS > COSMOS-DP > baseline; CP-only is a small
    # improvement; everything remains below NP (normalised < 1).
    assert full > dp > base
    assert cp >= base * 0.99
    assert full < 1.0
    # Magnitude: full COSMOS gains on the order of the paper's +25%.
    assert full / base > 1.12
    # Residual overhead vs NP remains substantial (paper ~33%).
    assert full < 0.95
