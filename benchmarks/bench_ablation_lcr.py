"""Ablation: Algorithm 2 read literally vs the recency/aging variants."""

from repro.bench.experiments import ablation_lcr_policy


def test_ablation_lcr_interpretations(run_once):
    rows = run_once(ablation_lcr_policy)
    by_name = {row["policy"]: row for row in rows}
    # With a well-sized CET (the default configuration), the literal
    # Algorithm 2 is the best interpretation: it must beat plain LRU...
    assert (
        by_name["lcr-literal"]["ctr_miss_rate"]
        < by_name["lru-plain"]["ctr_miss_rate"]
    )
    # ...and be at least as good as the defensive variants.
    assert (
        by_name["lcr-literal"]["ctr_miss_rate"]
        <= by_name["lcr-score+aging"]["ctr_miss_rate"] + 0.01
    )
    assert (
        by_name["lcr-literal"]["ctr_miss_rate"]
        <= by_name["lcr-recency+aging"]["ctr_miss_rate"] + 0.01
    )
