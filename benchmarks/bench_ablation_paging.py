"""Ablation (extension): physical page placement vs COSMOS's benefit."""

from repro.bench.experiments import ablation_paging


def test_ablation_page_placement(run_once):
    rows = run_once(ablation_paging)
    by_name = {row["page_mapping"]: row for row in rows}
    assert set(by_name) == {"identity", "first_touch", "randomized"}
    # COSMOS keeps a gain under every placement policy...
    for row in rows:
        assert row["cosmos_gain"] > 1.0
    # ...and randomised placement cannot *reduce* the baseline CTR miss
    # rate (it fragments counter granules).
    assert (
        by_name["randomized"]["morphctr_ctr_miss"]
        >= by_name["identity"]["morphctr_ctr_miss"] - 0.05
    )
