#!/usr/bin/env python3
"""Walkthrough of the secure-memory machinery itself (paper Fig. 1).

Exercises the functional substrate directly — no simulation:

1. AES-CTR encryption with MorphCtr counters (ciphertext freshness),
2. MAC generation and verification (tamper detection),
3. the Merkle tree over counter lines (replay detection),
4. counter-overflow handling (page re-encryption events).

Run with:  python examples/secure_memory_walkthrough.py
"""

from repro.secure.aes import AesCtrEngine
from repro.secure.counters import MorphCtrCounters, SplitCounters
from repro.secure.mac import MacStore
from repro.secure.merkle import MerkleTree


def main() -> None:
    aes = AesCtrEngine()
    counters = MorphCtrCounters()
    macs = MacStore()
    tree = MerkleTree(num_leaves=64, arity=2)

    # --- 1. Encrypt a line twice: counter mode never reuses a pad -------
    block = 42
    plaintext = b"sensitive tenant data, 64B...." + b"\x00" * 34
    counters.increment(block)
    first = aes.encrypt(plaintext, block << 6, counters.counter_value(block))
    counters.increment(block)
    second = aes.encrypt(plaintext, block << 6, counters.counter_value(block))
    print("1. AES-CTR freshness")
    print(f"   same plaintext, two writes -> ciphertexts differ: {first != second}")
    recovered = aes.decrypt(second, block << 6, counters.counter_value(block))
    print(f"   decryption recovers the plaintext: {recovered == plaintext}")

    # --- 2. MAC catches data tampering ----------------------------------
    counter = counters.counter_value(block)
    macs.update(block, second, counter)
    tampered = bytes([second[0] ^ 0x01]) + second[1:]
    print("\n2. MAC integrity")
    print(f"   genuine ciphertext verifies: {macs.verify(block, second, counter)}")
    print(f"   single-bit flip detected:    {not macs.verify(block, tampered, counter)}")

    # --- 3. Merkle tree catches counter replay --------------------------
    ctr_line = counters.ctr_index(block)
    payload_v2 = b"counter-line-state-v2"
    tree.update_leaf(ctr_line, b"counter-line-state-v1")
    tree.update_leaf(ctr_line, payload_v2)
    print("\n3. Merkle-tree replay protection")
    print(f"   current counter state verifies: {tree.verify_leaf(ctr_line, payload_v2)}")
    print(
        "   replayed old state rejected:    "
        f"{not tree.verify_leaf(ctr_line, b'counter-line-state-v1')}"
    )

    # --- 4. Counter overflow triggers page re-encryption ----------------
    print("\n4. Counter overflow / re-encryption")
    split = SplitCounters()
    writes = 0
    while True:
        writes += 1
        event = split.increment(7)
        if event is not None:
            print(f"   split CTR (7-bit minor): overflow after {writes} writes"
                  f" -> re-encrypt {event.num_blocks} blocks"
                  f" ({event.dram_requests} background DRAM requests)")
            break
    morph_writes = 0
    morph = MorphCtrCounters()
    while morph_writes < 100_000:
        morph_writes += 1
        if morph.increment(7) is not None:
            break
    print(f"   MorphCtr (ZCC): a single hot block survives "
          f"{morph_writes:,} writes without overflow "
          f"(format: {morph.line_format(0)})")


if __name__ == "__main__":
    main()
