#!/usr/bin/env python3
"""Scenario: choosing a secure-memory design for a graph-analytics service.

A cloud operator runs graph analytics (BFS / PageRank / connected
components) inside confidential VMs and wants to know what AES-CTR+MT
protection costs — and how much of that cost each optimisation claws back.
This walks the paper's design space (MorphCtr baseline, EMCC-style early
access, the COSMOS ablations) across three kernels and prints a
per-workload decision table.

Run with:  python examples/graph_analytics_study.py
"""

from repro import generate_graph_trace, simulate
from repro.bench.report import format_table, geometric_mean
from repro.sim.config import scaled_paper_config

KERNELS = ("bfs", "pr", "cc")
DESIGNS = ("morphctr", "emcc", "cosmos-dp", "cosmos-cp", "cosmos")


def main() -> None:
    config = scaled_paper_config(scale=16)
    rows = []
    per_design_norms = {design: [] for design in DESIGNS}
    for kernel in KERNELS:
        print(f"Simulating {kernel} across {len(DESIGNS) + 1} designs ...")
        trace = generate_graph_trace(kernel, max_accesses=80_000, graph_scale=2.0)
        reference = simulate("np", trace, config, workload=kernel)
        row = {"workload": kernel}
        for design in DESIGNS:
            result = simulate(design, trace, config, workload=kernel)
            normalised = result.normalized_to(reference)
            row[design] = round(normalised, 3)
            per_design_norms[design].append(normalised)
        rows.append(row)
    rows.append(
        {"workload": "geomean"}
        | {design: round(geometric_mean(values), 3) for design, values in per_design_norms.items()}
    )
    print("\nPerformance normalised to non-protected memory (higher is better):\n")
    print(format_table(rows))
    best = max(DESIGNS, key=lambda design: rows[-1][design])
    overhead = 1 / rows[-1][best] - 1
    print(f"\nRecommendation: {best} — residual protection overhead "
          f"{overhead:.0%} vs an unprotected system.")


if __name__ == "__main__":
    main()
