#!/usr/bin/env python3
"""Scenario: characterising a workload before choosing protection hardware.

Before committing silicon to a counter-cache optimisation, an architect
wants to know *why* a workload hurts: how irregular is it, how far apart
are its reuses, and how skewed is its counter-line popularity?  This
example runs the library's analysis toolkit over three very different
traces — a graph kernel, an ML model and a synthetic Zipf stream — and
prints the Section-3-style characterisation for each.

Run with:  python examples/workload_characterization.py
"""

from repro.workloads.analysis import (
    characterize,
    ctr_line_popularity,
    reuse_profile,
)
from repro.workloads.graph_algos import generate_graph_trace
from repro.workloads.micro import zipf_trace
from repro.workloads.ml import generate_ml_trace


def describe(name: str, accesses) -> None:
    summary = characterize(accesses)
    profile = reuse_profile(accesses, granularity_shift=7)  # counter lines
    popularity = sorted(ctr_line_popularity(accesses).values(), reverse=True)
    hot_share = sum(popularity[: max(1, len(popularity) // 100)]) / max(sum(popularity), 1)
    print(f"\n=== {name} ===")
    print(f"  accesses              : {summary.accesses:,}")
    print(f"  distinct 64B blocks   : {summary.distinct_blocks:,}")
    print(f"  write fraction        : {summary.write_fraction:.1%}")
    print(f"  sequential fraction   : {summary.sequential_fraction:.1%}")
    print(f"  irregular?            : {summary.is_irregular}")
    print(f"  top-1% ctr-line share : {hot_share:.1%}")
    median = profile.median_distance()
    print(f"  median CTR-line reuse : {median if median is not None else 'no reuse'}")
    for capacity in (128, 512, 2048):
        rate = 1.0 - profile.hit_rate_at(capacity)
        print(f"  LRU CTR cache of {capacity:>5} lines -> miss rate {rate:.1%}")


def main() -> None:
    graph = generate_graph_trace("bfs", num_cores=1, max_accesses=30_000, graph_scale=0.5)
    describe("BFS over a scale-free graph (irregular)", graph.accesses)

    ml = generate_ml_trace("resnet", num_cores=1, max_accesses=30_000)
    describe("ResNet inference (regular streaming)", ml.accesses)

    synthetic = zipf_trace(n=30_000, alpha=1.2, seed=4)
    describe("Zipf(1.2) synthetic stream (skewed popularity)", synthetic.accesses)

    print(
        "\nReading the output: irregular traces with long median reuse are"
        "\nexactly where a bigger LRU counter cache stops paying (paper"
        "\nFig. 3) and where COSMOS's locality-driven retention helps."
    )


if __name__ == "__main__":
    main()
