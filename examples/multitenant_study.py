#!/usr/bin/env python3
"""Scenario: multi-tenant consolidation under secure memory.

A confidential-cloud operator co-schedules different tenants on one socket:
a graph-analytics job, a key-value store and an ML inference service.  The
tenants share the LLC and the memory controller — including the counter
cache.  Does COSMOS still help when the CTR stream is a blend of regular
and irregular traffic?  And is the gain statistically solid across
workload seeds?

Run with:  python examples/multitenant_study.py
"""

from repro.bench.stats import SampleSummary
from repro.sim.config import scaled_paper_config
from repro.sim.simulator import simulate
from repro.workloads.db import generate_db_trace
from repro.workloads.graph_algos import generate_graph_trace
from repro.workloads.ml import generate_ml_trace
from repro.workloads.trace import multiprogram


def build_mix(seed: int):
    """One tenant per core: graph + KV store + ML + graph."""
    per_tenant = 25_000
    return multiprogram(
        [
            generate_graph_trace("bfs", num_cores=1, max_accesses=per_tenant,
                                 graph_scale=1.0, seed=seed),
            generate_db_trace("ycsb", num_cores=1, max_accesses=per_tenant,
                              seed=seed + 1),
            generate_ml_trace("resnet", num_cores=1, max_accesses=per_tenant,
                              seed=seed + 2),
            generate_graph_trace("sp", num_cores=1, max_accesses=per_tenant,
                                 graph_scale=1.0, seed=seed + 3),
        ],
        address_stride=1 << 29,
    )


def main() -> None:
    config = scaled_paper_config(scale=16, num_cores=4)
    speedups = []
    print("Simulating a 4-tenant mix (bfs + ycsb + resnet + sp) over 3 seeds ...")
    for seed in (11, 22, 33):
        mix = build_mix(seed)
        baseline = simulate("morphctr", mix, config, workload=mix.name)
        cosmos = simulate("cosmos", mix, config, workload=mix.name)
        gain = cosmos.speedup_over(baseline)
        speedups.append(gain)
        print(f"  seed {seed}: CTR miss {baseline.ctr_miss_rate:.1%} -> "
              f"{cosmos.ctr_miss_rate:.1%}, COSMOS gain {100 * (gain - 1):+.1f}%")
    summary = SampleSummary(tuple(speedups))
    low, high = summary.interval
    print(f"\nMean gain {100 * (summary.mean - 1):+.1f}%  "
          f"(95% CI: {100 * (low - 1):+.1f}% .. {100 * (high - 1):+.1f}%)")
    if low > 1.0:
        print("The gain exceeds seed-to-seed noise: COSMOS helps the mixed"
              " tenancy even with regular traffic blended in.")
    else:
        print("The interval includes 1.0: treat the gain as noise at this"
              " trace length and add seeds.")


if __name__ == "__main__":
    main()
