#!/usr/bin/env python3
"""Quickstart: simulate COSMOS vs the MorphCtr baseline on one workload.

Generates a DFS trace over a synthetic scale-free graph (the paper's
motivating irregular workload), runs it through the non-protected system,
the MorphCtr baseline and full COSMOS, and prints the headline comparison.

Run with:  python examples/quickstart.py
"""

from repro import generate_graph_trace, simulate
from repro.sim.config import scaled_paper_config


def main() -> None:
    # The scaled paper configuration: Table 3 with every capacity / 16 so
    # the experiment finishes in seconds (see EXPERIMENTS.md).
    config = scaled_paper_config(scale=16)

    print("Generating DFS trace over a GitHub-like scale-free graph ...")
    trace = generate_graph_trace("dfs", max_accesses=60_000, graph_scale=1.0)
    print(f"  {len(trace):,} accesses, {trace.metadata['footprint_bytes'] / 1e6:.1f} MB footprint")

    print("Simulating three designs ...")
    non_protected = simulate("np", trace, config, workload="dfs")
    baseline = simulate("morphctr", trace, config, workload="dfs")
    cosmos = simulate("cosmos", trace, config, workload="dfs")

    print("\n--- results ---")
    print(f"non-protected IPC: {non_protected.ipc:.4f}")
    print(f"MorphCtr      IPC: {baseline.ipc:.4f}  "
          f"(normalised to NP: {baseline.normalized_to(non_protected):.3f})")
    print(f"COSMOS        IPC: {cosmos.ipc:.4f}  "
          f"(normalised to NP: {cosmos.normalized_to(non_protected):.3f})")
    print(f"\nCOSMOS speedup over MorphCtr: "
          f"{100 * (cosmos.speedup_over(baseline) - 1):+.1f}%")
    print(f"CTR cache miss rate: {baseline.ctr_miss_rate:.1%} -> {cosmos.ctr_miss_rate:.1%}")
    print(f"Data-location prediction accuracy: "
          f"{cosmos.extra['prediction_accuracy']:.1%}")
    print(f"L1 misses served by the L1->DRAM bypass: "
          f"{cosmos.extra['bypass_fraction']:.1%}")


if __name__ == "__main__":
    main()
