#!/usr/bin/env python3
"""Scenario: prototyping a custom CTR-cache replacement policy.

The library's replacement-policy interface is open: anything implementing
``ReplacementPolicy`` can manage the CTR cache.  This example builds a
simple frequency-based policy (evict the least-frequently-tagged line),
plugs it into the MorphCtr design next to LRU and COSMOS's LCR, and
compares CTR miss rates on an irregular trace — the experiment a systems
researcher would run before committing to a new design point.

Run with:  python examples/custom_policy_exploration.py
"""

from typing import List, Optional

from repro.core.lcr_cache import LcrReplacementPolicy
from repro.mem.replacement import CacheLine, ReplacementPolicy
from repro.secure.counters import MorphCtrCounters
from repro.secure.ctr_cache import CtrCache
from repro.secure.layout import SecureLayout
from repro.workloads.graph_algos import generate_graph_trace


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used eviction with a tiny per-line counter."""

    name = "lfu"

    def on_insert(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        line.locality_score = 1  # reuse the spare per-line field

    def on_hit(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        line.locality_score = min(255, line.locality_score + 1)

    def victim(self, set_index: int, lines: List[CacheLine]) -> CacheLine:
        return min(lines, key=lambda line: line.locality_score)


def run_policy(policy, trace, label: str) -> float:
    layout = SecureLayout.for_memory_size(4 * 1024**3)
    cache = CtrCache(layout, MorphCtrCounters(), size_bytes=16 * 1024, assoc=16, policy=policy)
    for access in trace:
        cache.access(access.block_address)
    print(f"  {label:<24} CTR miss rate: {cache.miss_rate:.3f}")
    return cache.miss_rate


def main() -> None:
    print("Generating an irregular BFS trace ...")
    trace = generate_graph_trace("bfs", max_accesses=60_000, graph_scale=1.0)
    print("Replaying its block stream through a 16KB CTR cache under"
          " three replacement policies:\n")
    lru = run_policy(None, trace, "LRU (baseline)")
    lfu = run_policy(LfuPolicy(), trace, "LFU (custom)")
    lcr = run_policy(LcrReplacementPolicy(), trace, "LCR (untagged fallback)")
    best = min((lru, "LRU"), (lfu, "LFU"), (lcr, "LCR"))
    print(f"\nBest policy on this stream: {best[1]} ({best[0]:.3f} miss rate)")
    print("Note: LCR only beats LRU when COSMOS's locality predictor tags"
          " lines — see the full design comparison in the quickstart.")


if __name__ == "__main__":
    main()
