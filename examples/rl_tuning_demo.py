#!/usr/bin/env python3
"""Scenario: re-tuning COSMOS's RL agents for a new workload domain.

The paper tunes once on a GraphBIG DFS footprint (Sec. 4.5) and notes that
other domains need re-tuning.  This demo reproduces that flow end to end
on a small footprint: capture -> stage-1 hyperparameter search (rewards
fixed at +/-10) -> stage-2 reward search -> compare against the published
Table 1 values.

Run with:  python examples/rl_tuning_demo.py
"""

from repro.core.config import CosmosConfig
from repro.core.tuning import (
    evaluate_configuration,
    extract_footprint,
    paper_configuration,
    tune_hyperparameters,
    tune_rewards,
)
from repro.mem.hierarchy import HierarchyConfig, LevelConfig
from repro.workloads.graph_algos import generate_graph_trace


def main() -> None:
    hierarchy = HierarchyConfig(
        num_cores=1,
        l1=LevelConfig(2 * 1024, 2, 2),
        l2=LevelConfig(16 * 1024, 4, 20),
        llc=LevelConfig(64 * 1024, 8, 128),
    )
    base = CosmosConfig(num_states=4096, cet_entries=512, lcr_cache_bytes=8 * 1024)

    print("Capturing a DFS memory footprint (the paper used Pintool) ...")
    trace = generate_graph_trace("dfs", num_cores=1, max_accesses=30_000, graph_scale=0.5)
    footprint = extract_footprint(trace, hierarchy_config=hierarchy)
    print(f"  {len(footprint):,} events captured")

    print("\nStage 1: random hyperparameter search (rewards fixed at +/-10) ...")
    stage1 = tune_hyperparameters(footprint, n_combinations=12, seed=7, base_config=base)
    best_hyper = stage1.best.config.hyper
    print(f"  best LCR hit rate: {stage1.best.hit_rate:.3f}")
    print(f"  alpha_d={best_hyper.alpha_d:.3f} gamma_d={best_hyper.gamma_d:.3f} "
          f"epsilon_d={best_hyper.epsilon_d:.3f}")
    print(f"  alpha_c={best_hyper.alpha_c:.3f} gamma_c={best_hyper.gamma_c:.3f} "
          f"epsilon_c={best_hyper.epsilon_c:.4f}")

    print("\nStage 2: random reward search under the winning hyperparameters ...")
    stage2 = tune_rewards(footprint, best_hyper, n_combinations=12, seed=8, base_config=base)
    print(f"  best LCR hit rate: {stage2.best.hit_rate:.3f}")
    data_rewards = stage2.best.config.data_rewards
    print(f"  R_D_hi={data_rewards.r_hi:.0f} R_D_mo={data_rewards.r_mo:.0f} "
          f"R_D_ho={data_rewards.r_ho:.0f} R_D_mi={data_rewards.r_mi:.0f}")

    print("\nReference: the paper's published Table 1 configuration ...")
    published = paper_configuration()
    published_score = evaluate_configuration(
        footprint,
        CosmosConfig(
            num_states=base.num_states,
            cet_entries=base.cet_entries,
            lcr_cache_bytes=base.lcr_cache_bytes,
            hyper=published.hyper,
            data_rewards=published.data_rewards,
            ctr_rewards=published.ctr_rewards,
        ),
    )
    print(f"  Table 1 values score: {published_score:.3f} on this footprint")
    print("\n(The paper searched 1000 combinations per stage; pass larger"
          " n_combinations to match.)")


if __name__ == "__main__":
    main()
